// Persistent answer store (service/store.hpp): round trips, crash
// recovery (torn tail vs corrupt middle), header validation,
// export/import, the committed golden fixture, and the byte-identity
// guarantee across a service restart.

#include "ayd/service/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ayd/service/canonical.hpp"
#include "ayd/service/server.hpp"

namespace ayd::service {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ayd_store_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string store_path() const {
    return (dir_ / AnswerStore::kFileName).string();
  }

  void put(AnswerStore& store, const std::string& key,
           const std::string& value) {
    store.put(key, fnv1a64(key), value);
  }

  /// Raw bytes of a file (for surgical corruption).
  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  static void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kRecordPrefixBytes = 16;

/// Byte offset where record `i` of a store holding `kvs[0..i)` starts.
std::size_t record_offset(
    const std::vector<std::pair<std::string, std::string>>& kvs,
    std::size_t i) {
  std::size_t off = kHeaderBytes;
  for (std::size_t j = 0; j < i; ++j) {
    off += kRecordPrefixBytes + kvs[j].first.size() +
           kvs[j].second.size() + /*crc*/ 4;
  }
  return off;
}

TEST_F(StoreTest, RoundTripAndReopenPersists) {
  {
    AnswerStore store(store_path());
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_EQ(store.get("missing"), std::nullopt);
    put(store, "alpha", "answer-1");
    put(store, "beta", R"({"overhead":0.25})");
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_TRUE(store.contains("alpha"));
    EXPECT_EQ(store.get("alpha"), "answer-1");
  }
  AnswerStore reopened(store_path());
  EXPECT_EQ(reopened.entries(), 2u);
  EXPECT_EQ(reopened.open_stats().records_scanned, 2u);
  EXPECT_EQ(reopened.open_stats().truncated_bytes, 0u);
  EXPECT_FALSE(reopened.open_stats().quarantined);
  EXPECT_EQ(reopened.get("beta"), R"({"overhead":0.25})");
  // Appending after a reopen lands where the good prefix ends.
  reopened.put("gamma", fnv1a64("gamma"), "answer-3");
  AnswerStore again(store_path());
  EXPECT_EQ(again.entries(), 3u);
}

TEST_F(StoreTest, PathInDirCreatesDirectories) {
  const std::string nested = (dir_ / "a" / "b").string();
  const std::string path = AnswerStore::path_in_dir(nested);
  EXPECT_TRUE(fs::exists(nested));
  EXPECT_EQ(fs::path(path).filename().string(), AnswerStore::kFileName);
}

TEST_F(StoreTest, PutRejectsMismatchedHash) {
  AnswerStore store(store_path());
  EXPECT_THROW(store.put("key", fnv1a64("key") ^ 1u, "value"), StoreError);
  EXPECT_EQ(store.entries(), 0u);
}

TEST_F(StoreTest, DuplicatePutIsSkippedAnswersAreDeterministic) {
  AnswerStore store(store_path());
  put(store, "k", "v");
  const std::uint64_t bytes = store.file_bytes();
  put(store, "k", "v");
  EXPECT_EQ(store.file_bytes(), bytes);
  EXPECT_EQ(store.entries(), 1u);
}

TEST_F(StoreTest, GetDetectsBitRotUnderTheOpenStore) {
  const std::vector<std::pair<std::string, std::string>> kvs = {
      {"alpha", "answer-1"}};
  AnswerStore store(store_path());
  put(store, "alpha", "answer-1");
  // Flip one value byte behind the store's back: the per-read CRC check
  // must refuse to serve the record.
  std::string bytes = slurp(store_path());
  bytes[record_offset(kvs, 0) + kRecordPrefixBytes + 5 + 3] ^= 0x01;
  spit(store_path(), bytes);
  EXPECT_THROW((void)store.get("alpha"), StoreError);
}

TEST_F(StoreTest, TornTailIsTruncatedOnOpen) {
  const std::vector<std::pair<std::string, std::string>> kvs = {
      {"alpha", "answer-1"}, {"beta", "answer-2"}, {"gamma", "answer-3"}};
  {
    AnswerStore store(store_path());
    for (const auto& [k, v] : kvs) put(store, k, v);
  }
  // Chop the file mid-way through the third record — exactly what a
  // crash (or full disk) during append leaves behind.
  const std::string bytes = slurp(store_path());
  const std::size_t cut = record_offset(kvs, 2) + kRecordPrefixBytes + 2;
  ASSERT_LT(cut, bytes.size());
  spit(store_path(), bytes.substr(0, cut));

  AnswerStore recovered(store_path());
  EXPECT_EQ(recovered.entries(), 2u);
  EXPECT_EQ(recovered.open_stats().truncated_bytes,
            cut - record_offset(kvs, 2));
  EXPECT_FALSE(recovered.open_stats().quarantined);
  EXPECT_EQ(recovered.get("alpha"), "answer-1");
  EXPECT_EQ(recovered.get("beta"), "answer-2");
  EXPECT_FALSE(recovered.contains("gamma"));
  // The file itself was truncated back to the good prefix, and appends
  // continue from there.
  EXPECT_EQ(recovered.file_bytes(), record_offset(kvs, 2));
  recovered.put("gamma", fnv1a64("gamma"), "answer-3b");
  AnswerStore reopened(store_path());
  EXPECT_EQ(reopened.get("gamma"), "answer-3b");
  EXPECT_EQ(reopened.open_stats().truncated_bytes, 0u);
}

TEST_F(StoreTest, CrcFailingFinalRecordIsAlsoTorn) {
  const std::vector<std::pair<std::string, std::string>> kvs = {
      {"alpha", "answer-1"}, {"beta", "answer-2"}};
  {
    AnswerStore store(store_path());
    for (const auto& [k, v] : kvs) put(store, k, v);
  }
  // Damage the *last* record's value: with nothing after it, this is
  // indistinguishable from a partially flushed append -> truncate.
  std::string bytes = slurp(store_path());
  bytes[record_offset(kvs, 1) + kRecordPrefixBytes + 4 + 2] ^= 0x40;
  spit(store_path(), bytes);

  AnswerStore recovered(store_path());
  EXPECT_EQ(recovered.entries(), 1u);
  EXPECT_GT(recovered.open_stats().truncated_bytes, 0u);
  EXPECT_FALSE(recovered.open_stats().quarantined);
  EXPECT_EQ(recovered.get("alpha"), "answer-1");
}

TEST_F(StoreTest, CorruptMiddleRecordQuarantinesTheStore) {
  const std::vector<std::pair<std::string, std::string>> kvs = {
      {"alpha", "answer-1"}, {"beta", "answer-2"}, {"gamma", "answer-3"}};
  {
    AnswerStore store(store_path());
    for (const auto& [k, v] : kvs) put(store, k, v);
  }
  // Damage the middle record while valid records follow: not a crash
  // signature — the file is damaged and none of it can be trusted.
  std::string bytes = slurp(store_path());
  bytes[record_offset(kvs, 1) + kRecordPrefixBytes + 1] ^= 0x80;
  spit(store_path(), bytes);

  AnswerStore recovered(store_path());
  EXPECT_TRUE(recovered.open_stats().quarantined);
  EXPECT_EQ(recovered.entries(), 0u);
  EXPECT_TRUE(fs::exists(recovered.open_stats().quarantine_path));
  // The quarantined bytes are preserved for forensics; the fresh log is
  // immediately usable.
  EXPECT_EQ(slurp(recovered.open_stats().quarantine_path), bytes);
  recovered.put("delta", fnv1a64("delta"), "answer-4");
  EXPECT_EQ(recovered.get("delta"), "answer-4");
}

TEST_F(StoreTest, HeaderVersionMismatchIsRejectedWithPathAndReason) {
  { AnswerStore store(store_path()); }
  std::string bytes = slurp(store_path());
  bytes[8] = 99;  // u32 version, little-endian low byte
  spit(store_path(), bytes);
  try {
    AnswerStore store(store_path());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.path(), store_path());
    EXPECT_NE(e.reason().find("version"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find(store_path()), std::string::npos);
  }
}

// A store persisted by a binary with an older canonical-key schema must
// be refused, not reinterpreted: v1 keys lack the system "ext" member,
// so a v1 record could alias a v2 answer. The committed v1 fixture is a
// real artifact of the version-1 code, not a patched header.
TEST_F(StoreTest, OldFormatPersistedStoreIsRefusedWithPathAndReason) {
  const std::string golden_v1 =
      std::string(AYD_TEST_DATA_DIR) + "/golden_v1.aydstore";
  ASSERT_TRUE(fs::exists(golden_v1))
      << "missing fixture " << golden_v1
      << " (a v1-era store; see tests/data/README.md)";
  const std::string copy = (dir_ / "golden_v1.aydstore").string();
  fs::copy_file(golden_v1, copy);
  try {
    AnswerStore store(copy);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.path(), copy);
    EXPECT_NE(e.reason().find("version"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find(copy), std::string::npos);
  }
  // Refusal, not destruction: the old store is left byte-identical.
  EXPECT_EQ(slurp(copy), slurp(golden_v1));
}

TEST_F(StoreTest, HashSeedMismatchIsRejected) {
  { AnswerStore store(store_path()); }
  std::string bytes = slurp(store_path());
  bytes[16] ^= 0xFF;  // u64 hash_seed
  spit(store_path(), bytes);
  try {
    AnswerStore store(store_path());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_NE(e.reason().find("seed"), std::string::npos) << e.what();
  }
}

TEST_F(StoreTest, ForeignFileIsRejectedNotQuarantined) {
  spit(store_path(), "{\"not\":\"a store\"}\n");
  EXPECT_THROW(AnswerStore store(store_path()), StoreError);
  // Refusal, not destruction: the foreign file is left untouched.
  EXPECT_EQ(slurp(store_path()), "{\"not\":\"a store\"}\n");
}

TEST_F(StoreTest, ExportImportRoundTrip) {
  const std::string artifact = (dir_ / "artifact.aydstore").string();
  {
    AnswerStore store(store_path());
    put(store, "alpha", "answer-1");
    put(store, "beta", "answer-2");
    store.export_to(artifact);
  }
  AnswerStore other((dir_ / "other.aydstore").string());
  put(other, "beta", "answer-2");
  const AnswerStore::ImportStats stats = other.import_from(artifact);
  EXPECT_EQ(stats.imported, 1u);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(other.entries(), 2u);
  EXPECT_EQ(other.get("alpha"), "answer-1");
}

TEST_F(StoreTest, ImportRejectsIncompatibleHeaderAndImportsNothing) {
  const std::string artifact = (dir_ / "artifact.aydstore").string();
  {
    AnswerStore source((dir_ / "src.aydstore").string());
    put(source, "alpha", "answer-1");
    source.export_to(artifact);
  }
  std::string bytes = slurp(artifact);
  bytes[8] = static_cast<char>(AnswerStore::kFormatVersion + 1);
  spit(artifact, bytes);

  AnswerStore store(store_path());
  try {
    (void)store.import_from(artifact);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.path(), artifact);
    EXPECT_NE(e.reason().find("version"), std::string::npos) << e.what();
  }
  EXPECT_EQ(store.entries(), 0u);
}

TEST_F(StoreTest, ExportIsCompactedToLiveRecordsOnly) {
  const std::string artifact = (dir_ / "artifact.aydstore").string();
  AnswerStore store(store_path());
  put(store, "alpha", "answer-1");
  // Superseded duplicates can only enter via import; fake one by
  // importing a store that disagrees -- imports skip live keys, so
  // instead exercise compaction via the dup-free invariant: export of
  // N live keys has exactly N records.
  put(store, "beta", "answer-2");
  store.export_to(artifact);
  AnswerStore exported(artifact);
  EXPECT_EQ(exported.open_stats().records_scanned, 2u);
  EXPECT_EQ(exported.entries(), 2u);
}

// The committed fixture pins the on-disk format: if serialization ever
// drifts (field widths, endianness, CRC polynomial, header layout), this
// fails even though write-then-read round trips still pass.
TEST_F(StoreTest, GoldenFixtureReadsBackExactly) {
  const std::string golden =
      std::string(AYD_TEST_DATA_DIR) + "/golden.aydstore";
  ASSERT_TRUE(fs::exists(golden))
      << "missing fixture " << golden
      << " (regenerate: see tests/data/README.md)";
  // Copy first: opening must not mutate a pristine committed file.
  const std::string copy = (dir_ / "golden.aydstore").string();
  fs::copy_file(golden, copy);
  AnswerStore store(copy);
  EXPECT_EQ(store.entries(), 3u);
  EXPECT_EQ(store.open_stats().records_scanned, 3u);
  EXPECT_EQ(store.open_stats().truncated_bytes, 0u);
  EXPECT_FALSE(store.open_stats().quarantined);
  EXPECT_EQ(store.get("golden-key-1"), "golden-answer-1");
  EXPECT_EQ(store.get("golden-key-2"), R"({"overhead":0.125,"procs":512})");
  EXPECT_EQ(store.get("unicode-\xC3\xA9"), "caf\xC3\xA9");
  // Opening the valid fixture must not have rewritten a single byte.
  EXPECT_EQ(slurp(copy), slurp(golden));
}

// The tentpole guarantee: an answer served from disk after a process
// restart is byte-identical to what a fresh computation produces.
TEST_F(StoreTest, PersistedServiceHitIsByteIdenticalToRecomputation) {
  const std::string req =
      R"({"op":"optimize","id":1,"platform":"hera","scenario":2,)"
      R"("procs":256})";
  ServiceOptions with_store;
  with_store.threads = 1;
  with_store.cache_dir = dir_.string();

  std::string first_reply;
  {
    PlanningService service(with_store);
    first_reply = service.handle_line(req);
    EXPECT_EQ(service.cache_stats().misses, 1u);
    EXPECT_EQ(service.cache_stats().disk_hits, 0u);
  }  // service gone -- only the store survives, like a process restart

  PlanningService restarted(with_store);
  const std::string disk_reply = restarted.handle_line(req);
  EXPECT_EQ(disk_reply, first_reply);
  EXPECT_EQ(restarted.cache_stats().disk_hits, 1u);
  EXPECT_EQ(restarted.cache_stats().misses, 0u);
  // Promoted into RAM: the next hit is a plain memory hit.
  EXPECT_EQ(restarted.handle_line(req), first_reply);
  EXPECT_EQ(restarted.cache_stats().hits, 1u);

  // And a service with no disk tier computes the same bytes from
  // scratch.
  ServiceOptions fresh;
  fresh.threads = 1;
  PlanningService computed(fresh);
  EXPECT_EQ(computed.handle_line(req), first_reply);
}

TEST_F(StoreTest, ServiceRefusesToStartOnIncompatibleStore) {
  { AnswerStore store(store_path()); }
  std::string bytes = slurp(store_path());
  bytes[8] = 42;
  spit(store_path(), bytes);
  ServiceOptions options;
  options.threads = 1;
  options.cache_dir = dir_.string();
  EXPECT_THROW(PlanningService service(options), StoreError);
}

}  // namespace
}  // namespace ayd::service
