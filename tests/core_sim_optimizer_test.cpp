// Simulation-driven optimizer: exact closed-form fallback for exponential
// inputs, agreement of the noise-aware search with the analytic optimum
// where the analytic optimum is valid (Weibull k = 1 *is* exponential,
// sampled through the Weibull quantile), determinism, and the expected
// bursty-shape behaviour. All fixed-seed and deterministic.

#include "ayd/core/sim_optimizer.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/error.hpp"

namespace ayd::core {
namespace {

using model::Scenario;
using model::System;

constexpr double kProcs = 512.0;

SimSearchOptions quick_search() {
  SimSearchOptions opt;
  opt.replication.patterns_per_replica = 60;
  opt.replication.seed = 0x51A0u;
  opt.adaptive.min_replicas = 12;
  opt.adaptive.max_replicas = 512;
  opt.adaptive.ci_rel_tol = 0.04;
  opt.coarse_points = 5;
  opt.bracket_span = 8.0;
  opt.max_iterations = 20;
  return opt;
}

TEST(SimOptimalPeriod, ExponentialFallsBackToClosedFormExactly) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const SimSearchOptions opt = quick_search();
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, opt);

  PeriodSearchOptions popt;
  popt.min_period = opt.min_period;
  popt.max_period = opt.max_period;
  const PeriodOptimum exact = optimal_period(sys, kProcs, popt);

  EXPECT_TRUE(sim.used_closed_form);
  EXPECT_TRUE(sim.converged);
  EXPECT_DOUBLE_EQ(sim.period, exact.period);
  EXPECT_DOUBLE_EQ(sim.seed_period, exact.period);
  EXPECT_EQ(sim.evaluations, 1);  // one sim, only to attach the CI
  // The attached CI must be consistent with the analytic prediction the
  // exponential model makes at that pattern (loose z-style agreement).
  EXPECT_NEAR(sim.overhead.mean, exact.overhead,
              5.0 * sim.overhead.ci.half_width() + 0.01 * exact.overhead);
}

TEST(SimOptimalPeriod, WeibullK1SearchAgreesWithAnalyticOptimum) {
  // Weibull with k = 1 is the exponential law but is not flagged
  // memoryless, so the full noise-aware search runs — against a ground
  // truth the closed form knows exactly.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(1.0));
  const SimSearchOptions opt = quick_search();
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, opt);
  const PeriodOptimum exact = optimal_period(sys, kProcs);

  EXPECT_FALSE(sim.used_closed_form);
  EXPECT_TRUE(sim.converged);
  EXPECT_GT(sim.evaluations, 5);
  // The overhead surface is flat near the optimum, so assert optimality
  // where it is meaningful: the *analytic* overhead at the found period
  // must be within 1% of the analytic minimum, and the found period
  // within the bracket the search was told to resolve.
  const double h_at_found = pattern_overhead(sys, {sim.period, kProcs});
  EXPECT_LE(h_at_found, 1.01 * exact.overhead);
  EXPECT_GT(sim.period, exact.period / 4.0);
  EXPECT_LT(sim.period, exact.period * 4.0);
  // And the simulated overhead there must match the analytic prediction
  // within CI-scale noise.
  EXPECT_NEAR(sim.overhead.mean, h_at_found,
              5.0 * sim.overhead.ci.half_width() + 0.01 * h_at_found);
}

TEST(SimOptimalPeriod, DeterministicAcrossRepeatRuns) {
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  const SimPeriodOptimum a = sim_optimal_period(sys, kProcs, quick_search());
  const SimPeriodOptimum b = sim_optimal_period(sys, kProcs, quick_search());
  EXPECT_EQ(a.period, b.period);  // bitwise
  EXPECT_EQ(a.overhead.mean, b.overhead.mean);
  EXPECT_EQ(a.total_replicas, b.total_replicas);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.ci_limited, b.ci_limited);
}

TEST(SimOptimalPeriod, ThreadPoolDoesNotChangeTheOptimum) {
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  const SimPeriodOptimum serial =
      sim_optimal_period(sys, kProcs, quick_search());
  exec::ThreadPool pool(3);
  const SimPeriodOptimum parallel =
      sim_optimal_period(sys, kProcs, quick_search(), &pool);
  EXPECT_EQ(serial.period, parallel.period);  // bitwise
  EXPECT_EQ(serial.total_replicas, parallel.total_replicas);
}

TEST(SimOptimalPeriod, ForcedSearchOnExponentialStaysNearClosedForm) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  SimSearchOptions opt = quick_search();
  opt.force_search = true;
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, opt);
  const PeriodOptimum exact = optimal_period(sys, kProcs);
  EXPECT_FALSE(sim.used_closed_form);
  const double h_at_found = pattern_overhead(sys, {sim.period, kProcs});
  EXPECT_LE(h_at_found, 1.01 * exact.overhead);
}

TEST(SimOptimalPeriod, BurstyWeibullMovesTheOptimumBelowTheSeed) {
  // k = 0.5 is strongly bursty: failures cluster, so the true optimum
  // checkpoints more often than the exponential formula suggests — and
  // executing the exponential period must not beat the found optimum.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.5));
  SimSearchOptions opt = quick_search();
  opt.adaptive.ci_rel_tol = 0.03;
  const SimPeriodOptimum found = sim_optimal_period(sys, kProcs, opt);
  EXPECT_LT(found.period, found.seed_period);
  const ayd::sim::ReplicationResult at_seed =
      ayd::sim::simulate_overhead_adaptive(
          sys, {found.seed_period, kProcs}, opt.replication, opt.adaptive);
  EXPECT_LE(found.overhead.mean,
            at_seed.overhead.mean + at_seed.overhead.ci.half_width());
}

TEST(SimOptimalPeriod, ReplicationCapSurfacesAsCiNotConverged) {
  // An unreachable CI target with a tight replica cap must not be
  // reported as a met target — the interval is wider than requested.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  SimSearchOptions opt = quick_search();
  opt.adaptive.min_replicas = 8;
  opt.adaptive.max_replicas = 8;
  opt.adaptive.ci_rel_tol = 1e-9;
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, opt);
  EXPECT_FALSE(sim.ci_converged);
  // And the convergent configuration reports the target as met.
  const SimPeriodOptimum ok = sim_optimal_period(sys, kProcs, quick_search());
  EXPECT_TRUE(ok.ci_converged);
}

TEST(SimOptimalPeriod, RejectsInvalidOptions) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  SimSearchOptions opt = quick_search();
  opt.coarse_points = 2;
  EXPECT_THROW((void)sim_optimal_period(sys, kProcs, opt),
               util::InvalidArgument);
  opt = quick_search();
  opt.bracket_span = 1.0;
  EXPECT_THROW((void)sim_optimal_period(sys, kProcs, opt),
               util::InvalidArgument);
  EXPECT_THROW((void)sim_optimal_period(sys, 0.5, quick_search()),
               util::InvalidArgument);
}

TEST(SimOptimalAllocation, ExponentialFallsBackToClosedFormExactly) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  SimAllocationSearchOptions opt;
  opt.period = quick_search();
  const SimAllocationOptimum sim = sim_optimal_allocation(sys, opt);

  AllocationSearchOptions aopt;
  aopt.min_procs = opt.min_procs;
  aopt.max_procs = opt.max_procs;
  const AllocationOptimum exact = optimal_allocation(sys, aopt);

  EXPECT_TRUE(sim.used_closed_form);
  EXPECT_DOUBLE_EQ(sim.procs, exact.procs);
  EXPECT_DOUBLE_EQ(sim.period, exact.period);
  EXPECT_EQ(sim.outer_evaluations, 1);
  EXPECT_GE(sim.overhead.count, opt.period.adaptive.min_replicas);
}

TEST(SimOptimalAllocation, WeibullLadderSearchReturnsIntegerAllocation) {
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  SimAllocationSearchOptions opt;
  opt.period = quick_search();
  opt.period.adaptive.min_replicas = 8;
  opt.period.adaptive.max_replicas = 128;
  opt.period.adaptive.ci_rel_tol = 0.08;
  opt.period.coarse_points = 3;
  opt.period.max_iterations = 8;
  opt.rungs_per_side = 1;
  const SimAllocationOptimum sim = sim_optimal_allocation(sys, opt);
  EXPECT_FALSE(sim.used_closed_form);
  EXPECT_EQ(sim.outer_evaluations, 3);  // seed rung + one each side
  EXPECT_GE(sim.procs, 1.0);
  EXPECT_DOUBLE_EQ(sim.procs, std::round(sim.procs));
  EXPECT_GT(sim.period, 0.0);
  EXPECT_GT(sim.overhead.mean, 0.0);
  EXPECT_GT(sim.seed_procs, 0.0);
}

// -- Warm-started search (the online re-planning loop's fast path) -------

TEST(SimOptimalPeriod, WarmStartNearTheOptimumStaysOnTheOptimum) {
  // Weibull k = 1 again: the full search runs against an exact analytic
  // ground truth. A warm start at the known optimum with the narrow
  // bracket must land in the same neighbourhood as the cold search.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(1.0));
  const PeriodOptimum exact = optimal_period(sys, kProcs);

  SimSearchOptions warm = quick_search();
  warm.warm_start = exact.period;
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, warm);
  EXPECT_TRUE(sim.converged);
  EXPECT_FALSE(sim.used_closed_form);
  const double h_at_found = pattern_overhead(sys, {sim.period, kProcs});
  EXPECT_LE(h_at_found, 1.01 * exact.overhead);
  EXPECT_GT(sim.period, exact.period / warm.warm_bracket_span);
  EXPECT_LT(sim.period, exact.period * warm.warm_bracket_span);
}

TEST(SimOptimalPeriod, StaleWarmStartRecoversThroughEdgeExpansion) {
  // A hint 50x below the true optimum: the narrow warm bracket cannot
  // contain the minimum, so the edge-expansion logic must walk out and
  // still find it. This is the safety net that makes warm starts safe to
  // use on every re-plan.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(1.0));
  const PeriodOptimum exact = optimal_period(sys, kProcs);

  SimSearchOptions warm = quick_search();
  warm.warm_start = exact.period / 50.0;
  warm.max_iterations = 40;
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, warm);
  const double h_at_found = pattern_overhead(sys, {sim.period, kProcs});
  EXPECT_LE(h_at_found, 1.02 * exact.overhead);
}

TEST(SimOptimalPeriod, WarmStartIsIgnoredOnTheClosedFormPath) {
  // Memoryless systems take the exact closed form; a (nonsense) warm
  // hint must not perturb it.
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  SimSearchOptions opt = quick_search();
  opt.warm_start = 17.0;
  const SimPeriodOptimum sim = sim_optimal_period(sys, kProcs, opt);
  const PeriodOptimum exact = optimal_period(sys, kProcs);
  EXPECT_TRUE(sim.used_closed_form);
  EXPECT_DOUBLE_EQ(sim.period, exact.period);
}

TEST(SimOptimalPeriod, WarmBracketSpanMustExceedOne) {
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(1.0));
  SimSearchOptions opt = quick_search();
  opt.warm_start = 1000.0;
  opt.warm_bracket_span = 1.0;
  EXPECT_THROW((void)sim_optimal_period(sys, kProcs, opt),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::core
