#include "ayd/model/scenario.hpp"

#include <gtest/gtest.h>
#include <tuple>

#include "ayd/model/platform.hpp"
#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

TEST(Scenarios, AllSixInOrder) {
  const auto all = all_scenarios();
  ASSERT_EQ(all.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(scenario_number(all[static_cast<std::size_t>(i)]), i + 1);
  }
}

TEST(Scenarios, ParseAcceptsNumberAndPrefix) {
  EXPECT_EQ(scenario_from_string("1"), Scenario::kS1);
  EXPECT_EQ(scenario_from_string("s3"), Scenario::kS3);
  EXPECT_EQ(scenario_from_string(" S6 "), Scenario::kS6);
  EXPECT_THROW((void)scenario_from_string("7"), util::InvalidArgument);
  EXPECT_THROW((void)scenario_from_string("abc"), util::InvalidArgument);
}

TEST(Scenarios, DescriptionsMatchTableIII) {
  EXPECT_EQ(scenario_description(Scenario::kS1), "C=cP,  V=v");
  EXPECT_EQ(scenario_description(Scenario::kS6), "C=b/P, V=u/P");
}

// Table III structure: the shape of C and V per scenario.
TEST(Resolve, ShapesMatchTableIII) {
  const Platform p = hera();
  {
    const auto rc = resolve(p, Scenario::kS1);
    EXPECT_GT(rc.checkpoint.linear_coeff(), 0.0);
    EXPECT_DOUBLE_EQ(rc.checkpoint.constant_coeff(), 0.0);
    EXPECT_GT(rc.verification.constant_coeff(), 0.0);
  }
  {
    const auto rc = resolve(p, Scenario::kS2);
    EXPECT_GT(rc.checkpoint.linear_coeff(), 0.0);
    EXPECT_GT(rc.verification.inverse_coeff(), 0.0);
    EXPECT_DOUBLE_EQ(rc.verification.constant_coeff(), 0.0);
  }
  {
    const auto rc = resolve(p, Scenario::kS3);
    EXPECT_GT(rc.checkpoint.constant_coeff(), 0.0);
    EXPECT_DOUBLE_EQ(rc.checkpoint.linear_coeff(), 0.0);
  }
  {
    const auto rc = resolve(p, Scenario::kS5);
    EXPECT_GT(rc.checkpoint.inverse_coeff(), 0.0);
    EXPECT_DOUBLE_EQ(rc.checkpoint.constant_coeff(), 0.0);
  }
  {
    const auto rc = resolve(p, Scenario::kS6);
    EXPECT_GT(rc.checkpoint.inverse_coeff(), 0.0);
    EXPECT_GT(rc.verification.inverse_coeff(), 0.0);
  }
}

// The fitted coefficients must reproduce the measured costs at the
// measured processor count — for every platform and every scenario.
class ResolveFitsMeasurement
    : public ::testing::TestWithParam<std::tuple<int, Scenario>> {};

TEST_P(ResolveFitsMeasurement, ReproducesTableIIValuesAtMeasuredP) {
  const Platform platform =
      all_platforms()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const Scenario scenario = std::get<1>(GetParam());
  const ResilienceCosts rc = resolve(platform, scenario);
  const double p = platform.measured_procs;
  EXPECT_NEAR(rc.checkpoint.cost(p), platform.measured_checkpoint,
              1e-9 * platform.measured_checkpoint);
  EXPECT_NEAR(rc.verification.cost(p), platform.measured_verification,
              1e-9 * platform.measured_verification);
  // Recovery mirrors checkpoint (same I/O), per the paper.
  EXPECT_DOUBLE_EQ(rc.recovery.cost(p), rc.checkpoint.cost(p));
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatformsAllScenarios, ResolveFitsMeasurement,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::ValuesIn(all_scenarios())));

TEST(Resolve, HeraScenario1Coefficients) {
  // c = 300/512, v = 15.4 — hand-checked projection.
  const auto rc = resolve(hera(), Scenario::kS1);
  EXPECT_NEAR(rc.checkpoint.linear_coeff(), 300.0 / 512.0, 1e-15);
  EXPECT_DOUBLE_EQ(rc.verification.constant_coeff(), 15.4);
}

TEST(Classify, ScenarioToCaseMapping) {
  const Platform p = atlas();
  // Scenarios 1-2: case 1 with coefficient c.
  for (const Scenario s : {Scenario::kS1, Scenario::kS2}) {
    const CaseInfo info = classify(resolve(p, s));
    EXPECT_EQ(info.first_order_case, FirstOrderCase::kLinearCheckpoint);
    EXPECT_NEAR(info.coefficient, 439.0 / 1024.0, 1e-12);
  }
  // Scenarios 3-5: case 2 with coefficient d = constant part of C+V.
  {
    const CaseInfo info = classify(resolve(p, Scenario::kS3));
    EXPECT_EQ(info.first_order_case, FirstOrderCase::kConstantCost);
    EXPECT_NEAR(info.coefficient, 439.0 + 9.1, 1e-12);
  }
  {
    const CaseInfo info = classify(resolve(p, Scenario::kS4));
    EXPECT_EQ(info.first_order_case, FirstOrderCase::kConstantCost);
    EXPECT_NEAR(info.coefficient, 439.0, 1e-12);
  }
  {
    // Scenario 5: d comes from the verification constant only.
    const CaseInfo info = classify(resolve(p, Scenario::kS5));
    EXPECT_EQ(info.first_order_case, FirstOrderCase::kConstantCost);
    EXPECT_NEAR(info.coefficient, 9.1, 1e-12);
  }
  // Scenario 6: case 3, h = b + u.
  {
    const CaseInfo info = classify(resolve(p, Scenario::kS6));
    EXPECT_EQ(info.first_order_case, FirstOrderCase::kDecreasingCost);
    EXPECT_NEAR(info.coefficient, (439.0 + 9.1) * 1024.0, 1e-9);
  }
}

TEST(ResilienceCosts, CombinedIsComponentwiseSum) {
  const auto rc = resolve(coastal(), Scenario::kS3);
  const CostModel combined = rc.combined();
  EXPECT_DOUBLE_EQ(combined.cost(100.0),
                   rc.checkpoint.cost(100.0) + rc.verification.cost(100.0));
}

}  // namespace
}  // namespace ayd::model
