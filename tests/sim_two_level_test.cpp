// Tests of the two-level protocol simulator: deterministic error-free
// accounting, agreement with the exact expectation, reduction to the base
// fast sampler at n = 1, and the error-telemetry invariants.

#include "ayd/sim/two_level_protocol.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/expected_time.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::sim {
namespace {

using core::TwoLevelPattern;
using core::TwoLevelSystem;
using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

System make_system(double lambda, double f, double c, double v, double d) {
  ResilienceCosts costs{CostModel::constant(c), CostModel::constant(c),
                        CostModel::constant(v)};
  return System(FailureModel(lambda, f), costs, d, Speedup::amdahl(0.1));
}

TEST(TwoLevelSim, ErrorFreePatternIsExact) {
  const System base = make_system(0.0, 0.0, 120.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(4.0)};
  TwoLevelSimulator simulator(sys, {9000.0, 64.0, 3});
  rng::RngStream rng(1);
  const PatternStats s = simulator.simulate_pattern(rng);
  // 3 segments x (3000 + 10) + 2 level-1 checkpoints + 1 level-2.
  EXPECT_DOUBLE_EQ(s.wall_time, 9000.0 + 30.0 + 8.0 + 120.0);
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.fail_stop_errors, 0u);
  EXPECT_EQ(s.silent_detections, 0u);
}

TEST(TwoLevelSim, MatchesExactExpectation) {
  const System base = make_system(2e-7, 0.35, 250.0, 20.0, 900.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  const TwoLevelPattern pat{20000.0, 256.0, 4};
  const double expected = core::expected_two_level_time(sys, pat);

  ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 80;
  opt.seed = 42;
  const ReplicationResult r = simulate_two_level_overhead(sys, pat, opt);
  const double z = (r.pattern_time.mean - expected) /
                   std::max(r.pattern_time.stderr_mean, 1e-12);
  EXPECT_LT(std::abs(z), 4.0)
      << "simulated " << r.pattern_time.mean << " expected " << expected;
  EXPECT_NEAR(r.analytic_pattern_time, expected, 1e-12 * expected);
}

TEST(TwoLevelSim, OneSegmentMatchesBaseFastSampler) {
  // n = 1 with L1 = R reproduces the base protocol's distribution; the
  // two samplers' means must agree statistically, and the analytic
  // prediction must match Proposition 1 exactly.
  const System base = make_system(1e-7, 0.4, 300.0, 30.0, 1800.0);
  const TwoLevelSystem sys{base, base.costs().recovery};
  const TwoLevelPattern pat{20000.0, 256.0, 1};

  const double prop1 = core::expected_pattern_time(base, {20000.0, 256.0});
  EXPECT_NEAR(core::expected_two_level_time(sys, pat), prop1,
              1e-9 * prop1);

  ReplicationOptions opt;
  opt.replicas = 50;
  opt.patterns_per_replica = 60;
  opt.seed = 7;
  const ReplicationResult r = simulate_two_level_overhead(sys, pat, opt);
  const double z = (r.pattern_time.mean - prop1) /
                   std::max(r.pattern_time.stderr_mean, 1e-12);
  EXPECT_LT(std::abs(z), 4.0);
}

TEST(TwoLevelSim, SilentOnlyNeverRestartsPattern) {
  // f = 0: silent errors retry single segments via level-1 recovery; the
  // pattern-level attempt counter must stay at one per pattern.
  const System base = make_system(3e-8, 0.0, 100.0, 10.0, 3600.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  TwoLevelSimulator simulator(sys, {30000.0, 512.0, 5});
  rng::RngStream rng(11);
  PatternStats totals;
  for (int i = 0; i < 200; ++i) totals.merge(simulator.simulate_pattern(rng));
  EXPECT_EQ(totals.attempts, 200u);
  EXPECT_EQ(totals.fail_stop_errors, 0u);
  EXPECT_GT(totals.silent_detections, 0u);
}

TEST(TwoLevelSim, SilentRollbackIsCheaperWithMoreSegments) {
  // At a fixed T on a silent-dominated system, the simulated wall time
  // falls as segments are added (the analytic property, observed).
  const System base = make_system(4e-8, 0.1, 1000.0, 5.0, 600.0);
  const TwoLevelSystem sys{base, CostModel::constant(5.0)};
  ReplicationOptions opt;
  opt.replicas = 40;
  opt.patterns_per_replica = 50;
  opt.seed = 3;
  const ReplicationResult one =
      simulate_two_level_overhead(sys, {40000.0, 512.0, 1}, opt);
  const ReplicationResult eight =
      simulate_two_level_overhead(sys, {40000.0, 512.0, 8}, opt);
  EXPECT_LT(eight.overhead.mean, one.overhead.mean);
}

TEST(TwoLevelSim, DeterministicGivenSeed) {
  const System base = make_system(1e-7, 0.4, 300.0, 30.0, 1800.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  TwoLevelSimulator a(sys, {20000.0, 256.0, 4});
  TwoLevelSimulator b(sys, {20000.0, 256.0, 4});
  rng::RngStream ra(99), rb(99);
  for (int i = 0; i < 50; ++i) {
    const PatternStats sa = a.simulate_pattern(ra);
    const PatternStats sb = b.simulate_pattern(rb);
    EXPECT_DOUBLE_EQ(sa.wall_time, sb.wall_time);
    EXPECT_EQ(sa.silent_detections, sb.silent_detections);
  }
}

TEST(TwoLevelSim, WallTimeNeverBelowFaultFreeFloor) {
  const System base = make_system(2e-7, 0.3, 150.0, 15.0, 600.0);
  const TwoLevelSystem sys{base, CostModel::constant(6.0)};
  TwoLevelSimulator simulator(sys, {10000.0, 128.0, 5});
  rng::RngStream rng(3);
  const double floor = 10000.0 + 5.0 * 15.0 + 4.0 * 6.0 + 150.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(simulator.simulate_pattern(rng).wall_time, floor);
  }
}

TEST(TwoLevelDes, ErrorFreePatternIsExact) {
  const System base = make_system(0.0, 0.0, 120.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(4.0)};
  TwoLevelDesSimulator simulator(sys, {9000.0, 64.0, 3});
  rng::RngStream rng(1);
  const PatternStats s = simulator.simulate_pattern(rng);
  EXPECT_DOUBLE_EQ(s.wall_time, 9000.0 + 30.0 + 8.0 + 120.0);
  EXPECT_EQ(s.attempts, 1u);
}

TEST(TwoLevelDes, AgreesWithFastSamplerStatistically) {
  // Same distribution, independent implementations: the replicated means
  // from the two back-ends must agree within combined standard errors.
  const System base = make_system(2e-7, 0.35, 250.0, 20.0, 900.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  const TwoLevelPattern pat{20000.0, 256.0, 4};

  ReplicationOptions fast_opt;
  fast_opt.replicas = 50;
  fast_opt.patterns_per_replica = 60;
  fast_opt.seed = 17;
  fast_opt.backend = Backend::kFast;
  ReplicationOptions des_opt = fast_opt;
  des_opt.seed = 18;  // independent draws
  des_opt.backend = Backend::kDes;

  const ReplicationResult fast = simulate_two_level_overhead(sys, pat,
                                                             fast_opt);
  const ReplicationResult des = simulate_two_level_overhead(sys, pat,
                                                            des_opt);
  const double se = std::sqrt(
      fast.pattern_time.stderr_mean * fast.pattern_time.stderr_mean +
      des.pattern_time.stderr_mean * des.pattern_time.stderr_mean);
  EXPECT_LT(std::abs(fast.pattern_time.mean - des.pattern_time.mean),
            5.0 * se);
}

TEST(TwoLevelDes, TraceTilesWallTimeAndCountsDowntime) {
  const System base = make_system(2e-7, 0.5, 200.0, 20.0, 900.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  TwoLevelDesSimulator simulator(sys, {15000.0, 256.0, 3});
  rng::RngStream rng(23);
  Trace trace;
  double clock = 0.0;
  PatternStats totals;
  for (int i = 0; i < 20; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng, &trace, clock);
    clock += s.wall_time;
    totals.merge(s);
  }
  double sum = 0.0;
  for (const Segment& seg : trace.segments()) sum += seg.duration();
  EXPECT_NEAR(sum, totals.wall_time, 1e-6 * totals.wall_time);
  EXPECT_NEAR(trace.time_in(SegmentKind::kDowntime),
              static_cast<double>(totals.fail_stop_errors) * 900.0, 1e-6);
  // Every pattern ends with a successful level-2 checkpoint and each
  // completed segment wrote one, so checkpoint time is at least
  // patterns * (2*L1 + C2).
  EXPECT_GE(trace.time_in(SegmentKind::kCheckpoint),
            20.0 * (2.0 * 20.0 + 200.0) - 1e-9);
}

TEST(TwoLevelDes, SilentRetryStaysWithinSegment) {
  // f = 0 and n = 2: every silent error triggers an L1 recovery traced as
  // kRecovery of length L1; no downtime should ever appear.
  const System base = make_system(3e-8, 0.0, 100.0, 10.0, 3600.0);
  const TwoLevelSystem sys{base, CostModel::constant(7.0)};
  TwoLevelDesSimulator simulator(sys, {30000.0, 512.0, 2});
  rng::RngStream rng(31);
  Trace trace;
  double clock = 0.0;
  PatternStats totals;
  for (int i = 0; i < 100; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng, &trace, clock);
    clock += s.wall_time;
    totals.merge(s);
  }
  EXPECT_EQ(totals.fail_stop_errors, 0u);
  EXPECT_GT(totals.silent_detections, 0u);
  EXPECT_DOUBLE_EQ(trace.time_in(SegmentKind::kDowntime), 0.0);
  EXPECT_NEAR(trace.time_in(SegmentKind::kRecovery),
              static_cast<double>(totals.silent_detections) * 7.0, 1e-6);
}

TEST(TwoLevelSim, PathologicalRatesThrowInsteadOfHanging) {
  const System base = make_system(1e-3, 0.5, 300.0, 30.0, 1800.0);
  const TwoLevelSystem sys = TwoLevelSystem::with_memory_level1(base);
  TwoLevelSimulator simulator(sys, {1e7, 4096.0, 2});
  rng::RngStream rng(5);
  EXPECT_THROW((void)simulator.simulate_pattern(rng),
               util::SimulationDiverged);
}

}  // namespace
}  // namespace ayd::sim
