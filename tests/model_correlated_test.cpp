// Statistical validation of the correlated / multi-level world samplers
// (CTest label: "statistical"; CI runs this tier in its own job).
//
// The correlated simulators (sim/correlated.hpp) draw one arrival per
// fail source each renewal interval and let the earliest strike. The
// marginal law of that minimum has the closed form
//     F(x) = 1 - prod_j (1 - F_j(x))
// over the per-source inter-arrival CDFs F_j, so we KS-test 10k
// fixed-seed minima from the production source set against it — for the
// shock mixture and for heterogeneous component classes. Moments with
// closed-form expectations (shock share of strikes, mean first arrival)
// pin the rate parameterization itself: a mis-scaled shock_rate would
// pass a shape-only KS test on the shock stream alone but not these.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/core/pattern.hpp"
#include "ayd/model/correlated.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/system.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/correlated.hpp"
#include "ayd/stats/ks.hpp"
#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

constexpr std::size_t kSamples = 10000;
constexpr std::uint64_t kSeed = 0xA4D2016ULL;
constexpr double kPValueFloor = 1e-3;

/// The production source set of an extended system at this pattern.
sim::detail::CorrelatedWorld world_of(const System& sys,
                                      const core::Pattern& pattern) {
  return sim::detail::CorrelatedWorld(sys, pattern);
}

struct MinDraw {
  double gap = 0.0;
  bool from_shock = false;
};

/// One renewal-interval draw exactly as the fast simulator makes it:
/// every active source sampled in order, strict < keeps the first.
MinDraw draw_min(const sim::detail::CorrelatedWorld& world,
                 rng::RngStream& rng) {
  MinDraw out;
  out.gap = std::numeric_limits<double>::infinity();
  for (const sim::detail::FailSource& src : world.fail_sources()) {
    if (src.dist->rate() <= 0.0) continue;
    const double a = src.dist->sample(rng);
    if (a < out.gap) {
      out.gap = a;
      out.from_shock = src.is_shock;
    }
  }
  return out;
}

/// Closed-form CDF of the minimum over the world's fail sources.
double min_cdf(const sim::detail::CorrelatedWorld& world, double x) {
  double survival = 1.0;
  for (const sim::detail::FailSource& src : world.fail_sources()) {
    if (src.dist->rate() <= 0.0) continue;
    survival *= 1.0 - src.dist->cdf(x);
  }
  return 1.0 - survival;
}

void expect_min_marginal_ks_passes(const System& sys,
                                   const core::Pattern& pattern,
                                   std::uint64_t stream_id,
                                   const char* label) {
  const auto world = world_of(sys, pattern);
  rng::RngStream rng(kSeed, stream_id);
  std::vector<double> xs(kSamples);
  for (double& x : xs) x = draw_min(world, rng).gap;
  const auto ks =
      stats::ks_test(xs, [&](double x) { return min_cdf(world, x); });
  EXPECT_GT(ks.p_value, kPValueFloor) << label << ": D=" << ks.statistic;
}

TEST(CorrelatedSamplers, ShockMixtureMarginalGapMatchesClosedFormCdf) {
  const System sys =
      System::from_platform(hera(), Scenario::kS1)
          .with_lambda(1e-8)
          .with_shock({0.5, 0.02});
  expect_min_marginal_ks_passes(sys, {3600.0, 128.0}, 1,
                                "shock rho=0.5 g=0.02");
}

TEST(CorrelatedSamplers, ShockMixtureWithWeibullShockDist) {
  const System sys =
      System::from_platform(hera(), Scenario::kS1)
          .with_lambda(1e-8)
          .with_shock({0.3, 0.05, FailureDistSpec::weibull(0.7)});
  expect_min_marginal_ks_passes(sys, {3600.0, 256.0}, 2,
                                "shock rho=0.3 weibull k=0.7");
}

TEST(CorrelatedSamplers, HeterogeneousMarginalGapMatchesClosedFormCdf) {
  HeterogeneousSpec hetero;
  hetero.groups = {{0.25, 2.0, FailureDistSpec::weibull(0.7)},
                   {0.5, 0.8, {}},
                   {0.25, 0.4, FailureDistSpec::lognormal(1.2)}};
  const System sys = System::from_platform(hera(), Scenario::kS3)
                         .with_lambda(1e-8)
                         .with_heterogeneity(hetero);
  ASSERT_TRUE(sys.extended());
  expect_min_marginal_ks_passes(sys, {3600.0, 512.0}, 3,
                                "hetero 3 classes");
}

TEST(CorrelatedSamplers, ShockPlusHeterogeneityCombined) {
  HeterogeneousSpec hetero;
  hetero.groups = {{0.5, 1.5, FailureDistSpec::weibull(1.5)},
                   {0.5, 0.5, {}}};
  const System sys = System::from_platform(hera(), Scenario::kS1)
                         .with_lambda(1e-8)
                         .with_shock({0.4, 0.05})
                         .with_heterogeneity(hetero);
  expect_min_marginal_ks_passes(sys, {7200.0, 256.0}, 4,
                                "shock + hetero");
}

TEST(CorrelatedSamplers, ShockShareAndMeanGapMatchClosedFormMoments) {
  // All-exponential sources: the strike probability of the shock stream
  // is exactly lambda_shock / lambda_total, and the mean minimum is
  // exactly 1 / lambda_total. These moments pin shock_rate's
  // parameterization (rho * f * lambda_ind / g, independent of P).
  const double rho = 0.5;
  const double g = 0.02;
  const double lambda = 1e-8;
  const double procs = 128.0;
  const System sys = System::from_platform(hera(), Scenario::kS1)
                         .with_lambda(lambda)
                         .with_shock({rho, g});
  const auto world = world_of(sys, {3600.0, procs});

  const double f = sys.failure().fail_stop_fraction();
  const double lambda_ind = (1.0 - rho) * f * lambda * procs;
  const double lambda_shock = rho * f * lambda / g;
  const double lambda_total = lambda_ind + lambda_shock;
  ASSERT_NEAR(world.total_fail_rate(), lambda_total, 1e-12 * lambda_total);

  rng::RngStream rng(kSeed, 5);
  std::size_t shocks = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const MinDraw d = draw_min(world, rng);
    if (d.from_shock) ++shocks;
    sum += d.gap;
  }

  const double p_shock = lambda_shock / lambda_total;
  const double share = static_cast<double>(shocks) / kSamples;
  const double binom_sd = std::sqrt(p_shock * (1.0 - p_shock) / kSamples);
  EXPECT_NEAR(share, p_shock, 4.0 * binom_sd);

  const double mean = sum / kSamples;
  const double expected_mean = 1.0 / lambda_total;
  // Exponential minimum: sd equals the mean; 4-sigma band on the sample
  // mean.
  EXPECT_NEAR(mean, expected_mean,
              4.0 * expected_mean / std::sqrt(double(kSamples)));
}

TEST(CorrelatedSamplers, HeterogeneousClassSharesMatchRateFractions) {
  // Exponential classes at distinct scales: class j strikes with
  // probability proportional to its rate share * scale.
  HeterogeneousSpec hetero;
  hetero.groups = {{0.25, 3.0, {}}, {0.75, 1.0 / 3.0, {}}};
  const System sys = System::from_platform(hera(), Scenario::kS3)
                         .with_lambda(1e-8)
                         .with_heterogeneity(hetero);
  const auto world = world_of(sys, {3600.0, 256.0});
  ASSERT_EQ(world.fail_sources().size(), 2u);

  rng::RngStream rng(kSeed, 6);
  std::size_t first = 0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t who = 0;
    for (std::size_t j = 0; j < world.fail_sources().size(); ++j) {
      const double a = world.fail_sources()[j].dist->sample(rng);
      if (a < best) {
        best = a;
        who = j;
      }
    }
    if (who == 0) ++first;
  }
  // share * scale: 0.25 * 3 = 0.75 of the total platform rate.
  const double p = 0.75;
  const double sd = std::sqrt(p * (1.0 - p) / kSamples);
  EXPECT_NEAR(static_cast<double>(first) / kSamples, p, 4.0 * sd);
}

// -- spec plumbing (parse / print / normalize round trips) ---------------

TEST(CorrelatedSpecs, ShockSpecParsePrintRoundTrip) {
  const ShockSpec s = ShockSpec::parse("rho=0.4,group=0.1,dist=weibull:k=0.7");
  EXPECT_DOUBLE_EQ(s.correlation, 0.4);
  EXPECT_DOUBLE_EQ(s.group_fraction, 0.1);
  EXPECT_EQ(s.dist, FailureDistSpec::weibull(0.7));
  EXPECT_EQ(ShockSpec::parse(s.to_string()), s);
  EXPECT_THROW(ShockSpec::parse("group=0.1"), util::InvalidArgument);
  EXPECT_THROW(ShockSpec::parse("rho=1.0"), util::InvalidArgument);
  EXPECT_THROW(ShockSpec::parse("rho=0.5,group=0"), util::InvalidArgument);
}

TEST(CorrelatedSpecs, HeterogeneousSpecParseValidatesBudgets) {
  const HeterogeneousSpec h =
      HeterogeneousSpec::parse("0.25*3*weibull:k=0.7;0.75*0.333333333333333*"
                               "exponential");
  EXPECT_EQ(h.groups.size(), 2u);
  // Shares off budget are rejected at normalization time.
  HeterogeneousSpec bad;
  bad.groups = {{0.5, 1.0, {}}, {0.4, 1.0, {}}};
  EXPECT_THROW((void)bad.normalized({}), util::InvalidArgument);
  // Scales off the share-weighted budget too.
  HeterogeneousSpec skew;
  skew.groups = {{0.5, 2.0, {}}, {0.5, 0.5, {}}};
  EXPECT_THROW((void)skew.normalized({}), util::InvalidArgument);
}

TEST(CorrelatedSpecs, FromPenaltyScalesRecoveryCoefficientwise) {
  const System base = System::from_platform(hera(), Scenario::kS1);
  const TwoTierCostSpec spec =
      TwoTierCostSpec::from_penalty(base.costs(), 4.0);
  EXPECT_TRUE(spec.distinct());
  for (const double p : {64.0, 512.0, 4096.0}) {
    EXPECT_DOUBLE_EQ(spec.pfs_recovery.cost(p),
                     4.0 * base.costs().recovery.cost(p));
    EXPECT_DOUBLE_EQ(spec.bb_write.cost(p) + spec.pfs_write.cost(p),
                     base.costs().checkpoint.cost(p));
  }
  EXPECT_THROW(TwoTierCostSpec::from_penalty(base.costs(), 0.5),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::model
