#!/usr/bin/env python3
"""Regenerates the synthetic regime-switch failure logs used by the
replay test tier (tests/replan_replay_test.cpp) and the `ayd watch` CI
smoke. Deterministic: fixed seeds, shortest-round-trip formatting, so a
rerun reproduces the committed files byte for byte.

The traces are failure-log CSVs (sim/trace.hpp): one "gap_seconds"
header, one inter-arrival gap in seconds per line.
"""

import math
import random


def weibull_gaps(rng, n, shape, mean):
    """Weibull(k) gaps with the given mean (scale = mean / Gamma(1+1/k))."""
    scale = mean / math.gamma(1.0 + 1.0 / shape)
    return [rng.weibullvariate(scale, shape) for _ in range(n)]


def exponential_gaps(rng, n, mean):
    return [rng.expovariate(1.0 / mean) for _ in range(n)]


def write(path, gaps):
    with open(path, "w") as f:
        f.write("gap_seconds\n")
        for g in gaps:
            f.write(repr(g) + "\n")
    print(f"{path}: {len(gaps)} gaps")


def main():
    # Shape switch at constant mean: Weibull k 0.7 (bursty) -> 1.4
    # (wear-out) at event 600, platform MTBF fixed at one hour. The
    # replay tests assert this switch is detected within a bounded
    # number of events after it happens.
    rng = random.Random(20160907)
    write(
        "replay_weibull_shift.csv",
        weibull_gaps(rng, 600, 0.7, 3600.0)
        + weibull_gaps(rng, 600, 1.4, 3600.0),
    )

    # Stationary exponential stream: the false-positive guard. A
    # correctly configured noise floor must publish no re-plans here.
    rng = random.Random(424243)
    write("replay_stationary_exp.csv", exponential_gaps(rng, 800, 3600.0))

    # Rate step at constant shape: exponential failures whose rate
    # quadruples at event 450 (MTBF 2h -> 30min).
    rng = random.Random(77001)
    write(
        "replay_rate_step.csv",
        exponential_gaps(rng, 450, 7200.0)
        + exponential_gaps(rng, 450, 1800.0),
    )


if __name__ == "__main__":
    main()
