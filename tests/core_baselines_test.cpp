#include "ayd/core/baselines.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::core {
namespace {

using model::Scenario;
using model::System;

TEST(FailStopOnly, PreservesFailStopRateDropsSilent) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const System blind = fail_stop_only_system(sys);
  for (const double p : {64.0, 512.0, 4096.0}) {
    EXPECT_DOUBLE_EQ(blind.fail_stop_rate(p), sys.fail_stop_rate(p));
    EXPECT_DOUBLE_EQ(blind.silent_rate(p), 0.0);
  }
  // Costs and downtime untouched.
  EXPECT_DOUBLE_EQ(blind.checkpoint_cost(512.0), sys.checkpoint_cost(512.0));
  EXPECT_DOUBLE_EQ(blind.downtime(), sys.downtime());
}

TEST(SilentBlind, PeriodIsYoungDalyStyle) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const double p = 512.0;
  const double lf = sys.fail_stop_rate(p);
  const double vc = sys.resilience_cost(p);
  EXPECT_NEAR(silent_blind_period(sys, p), std::sqrt(vc / (lf / 2.0)),
              1e-9 * silent_blind_period(sys, p));
}

TEST(SilentBlind, OverestimatesThePeriod) {
  // Ignoring silent errors means underestimating the error rate, hence a
  // longer-than-optimal period — on every platform (they all have s > 0).
  for (const auto& platform : model::all_platforms()) {
    const System sys = System::from_platform(platform, Scenario::kS3);
    const double p = platform.measured_procs;
    EXPECT_GT(silent_blind_period(sys, p),
              optimal_period_first_order(sys, p))
        << platform.name;
  }
}

TEST(SilentBlind, CostsRealOverheadUnderBothErrorSources) {
  // Planning blind and executing in the real (two-error) world must be
  // strictly worse than the VC optimum.
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const double p = 512.0;
  const double t_blind = silent_blind_period(sys, p);
  const PeriodOptimum vc = optimal_period(sys, p);
  const double h_blind = pattern_overhead(sys, {t_blind, p});
  EXPECT_GT(h_blind, vc.overhead);
}

TEST(JinRelaxation, AgreesWithNestedOptimiser) {
  for (const Scenario s : {Scenario::kS1, Scenario::kS3, Scenario::kS5}) {
    const System sys = System::from_platform(model::hera(), s);
    const JinRelaxationResult jin = jin_relaxation(sys);
    EXPECT_TRUE(jin.converged) << model::scenario_name(s);
    AllocationSearchOptions opt;
    opt.refine_integer = false;
    const AllocationOptimum nested = optimal_allocation(sys, opt);
    EXPECT_NEAR(jin.overhead, nested.overhead, 1e-4 * nested.overhead)
        << model::scenario_name(s);
    EXPECT_NEAR(jin.procs, nested.procs_continuous,
                0.02 * nested.procs_continuous)
        << model::scenario_name(s);
  }
}

TEST(JinRelaxation, ConvergesFromFarStartingPoints) {
  const System sys = System::from_platform(model::atlas(), Scenario::kS3);
  JinRelaxationOptions near_opt, far_opt;
  near_opt.initial_procs = 500.0;
  far_opt.initial_procs = 1.0;
  const JinRelaxationResult a = jin_relaxation(sys, near_opt);
  const JinRelaxationResult b = jin_relaxation(sys, far_opt);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_NEAR(a.procs, b.procs, 0.01 * a.procs);
  EXPECT_NEAR(a.overhead, b.overhead, 1e-6 * a.overhead);
}

TEST(JinRelaxation, ReportsRounds) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  const JinRelaxationResult r = jin_relaxation(sys);
  EXPECT_GE(r.rounds, 1);
  EXPECT_LE(r.rounds, 100);
}

TEST(JinRelaxation, RejectsBadOptions) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  JinRelaxationOptions opt;
  opt.initial_procs = 1e9;  // outside [min, max]
  EXPECT_THROW((void)jin_relaxation(sys, opt), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::core
