// Tests of the experiment engine: grid construction, record semantics,
// sinks, and the determinism of point-parallel evaluation.

#include "ayd/engine/engine.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <stdexcept>

#include "ayd/io/csv.hpp"
#include "ayd/util/error.hpp"

namespace ayd::engine {
namespace {

// -- Axis ----------------------------------------------------------------

TEST(Axis, LinearSpacingMatchesEndpoints) {
  const Axis a = Axis::linear("x", 0.0, 10.0, 5);
  ASSERT_EQ(a.values.size(), 5u);
  EXPECT_DOUBLE_EQ(a.values.front(), 0.0);
  EXPECT_DOUBLE_EQ(a.values[2], 5.0);
  EXPECT_DOUBLE_EQ(a.values.back(), 10.0);
}

TEST(Axis, LogSpacingIsGeometric) {
  const Axis a = Axis::log_spaced("lambda", 1e-12, 1e-8, 5);
  ASSERT_EQ(a.values.size(), 5u);
  for (std::size_t i = 0; i + 1 < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i + 1] / a.values[i], 10.0, 1e-9);
  }
}

TEST(Axis, StepIncludesUpperEndpoint) {
  const Axis a = Axis::step("p", 200.0, 1400.0, 200.0);
  ASSERT_EQ(a.values.size(), 7u);
  EXPECT_DOUBLE_EQ(a.values.back(), 1400.0);
}

TEST(Axis, RejectsDegenerateRanges) {
  EXPECT_THROW((void)Axis::linear("x", 1.0, 0.0, 3), util::Error);
  EXPECT_THROW((void)Axis::linear("x", 0.0, 1.0, 1), util::Error);
  EXPECT_THROW((void)Axis::log_spaced("x", 0.0, 1.0, 3), util::Error);
  EXPECT_THROW((void)Axis::list("x", {}), util::Error);
}

// -- GridSpec ------------------------------------------------------------

TEST(GridSpec, CartesianSizeAndOrder) {
  GridSpec grid;
  grid.scenarios({model::Scenario::kS1, model::Scenario::kS3})
      .axis(Axis::list("lambda", {1e-10, 1e-9, 1e-8}));
  EXPECT_EQ(grid.size(), 6u);

  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), 6u);
  // First-declared dimension (scenarios) varies slowest.
  EXPECT_EQ(*pts[0].scenario, model::Scenario::kS1);
  EXPECT_DOUBLE_EQ(pts[0].var("lambda"), 1e-10);
  EXPECT_EQ(*pts[2].scenario, model::Scenario::kS1);
  EXPECT_DOUBLE_EQ(pts[2].var("lambda"), 1e-8);
  EXPECT_EQ(*pts[3].scenario, model::Scenario::kS3);
  EXPECT_DOUBLE_EQ(pts[3].var("lambda"), 1e-10);
  // Indices are the row-major positions.
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(pts[i].index, i);
}

TEST(GridSpec, DeclarationOrderControlsNesting) {
  GridSpec grid;
  grid.axis(Axis::list("p", {1.0, 2.0}))
      .scenarios({model::Scenario::kS1, model::Scenario::kS2});
  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), 4u);
  // Axis declared first -> p varies slowest.
  EXPECT_DOUBLE_EQ(pts[0].var("p"), 1.0);
  EXPECT_DOUBLE_EQ(pts[1].var("p"), 1.0);
  EXPECT_DOUBLE_EQ(pts[2].var("p"), 2.0);
  EXPECT_EQ(*pts[1].scenario, model::Scenario::kS2);
}

TEST(GridSpec, PlatformDimensionCarriesThePreset) {
  GridSpec grid;
  grid.platforms(model::all_platforms());
  const auto pts = grid.points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].platform->name, model::all_platforms()[0].name);
}

TEST(GridSpec, RejectsDuplicateDimensions) {
  GridSpec grid;
  grid.axis(Axis::list("x", {1.0}));
  EXPECT_THROW(grid.axis(Axis::list("x", {2.0})), util::Error);
  grid.scenarios({model::Scenario::kS1});
  EXPECT_THROW(grid.scenarios({model::Scenario::kS2}), util::Error);
}

TEST(GridSpec, MissingVarThrows) {
  GridSpec grid;
  grid.axis(Axis::list("x", {1.0}));
  const auto pts = grid.points();
  EXPECT_THROW((void)pts[0].var("y"), util::InvalidArgument);
  EXPECT_FALSE(pts[0].has_var("y"));
  EXPECT_TRUE(pts[0].has_var("x"));
}

// -- Record --------------------------------------------------------------

TEST(Record, PreservesInsertionOrderAndTypes) {
  Record r;
  r.set("a", 1.5);
  r.set("b", "text");
  r.set_missing("c");
  ASSERT_EQ(r.fields().size(), 3u);
  EXPECT_EQ(r.fields()[0].first, "a");
  EXPECT_EQ(r.fields()[2].first, "c");
  EXPECT_DOUBLE_EQ(r.num("a"), 1.5);
  EXPECT_EQ(r.text("b"), "text");
  EXPECT_THROW((void)r.num("b"), util::InvalidArgument);
  EXPECT_THROW((void)r.num("missing-key"), util::InvalidArgument);
}

TEST(Record, LastSetWins) {
  Record r;
  r.set("a", 1.0);
  r.set("a", "now text");
  EXPECT_EQ(r.fields().size(), 1u);
  EXPECT_EQ(r.text("a"), "now text");
}

// -- Sinks ---------------------------------------------------------------

Record sample_record() {
  Record r;
  r.set("name", "row");
  r.set("value", 0.123456789);
  r.set_missing("gap");
  return r;
}

TEST(TableSink, FormatsPerColumnSpec) {
  TableSink sink({{"name", "", 4, "", io::Align::kLeft},
                  {"v", "value", 3},
                  {"v%", "value", 2, "%"},
                  {"gap"}});
  sink.write(sample_record());
  sink.close();
  const std::string s = sink.to_string();
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("0.12%"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(CsvSink, WritesHeaderAndRowsOnClose) {
  const std::string path = ::testing::TempDir() + "/engine_sink_test.csv";
  std::ostringstream announce;
  {
    CsvSink sink(path, {{"name"}, {"value", "", 6}}, &announce);
    sink.write(sample_record());
    sink.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto rows = io::parse_csv(buf.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "name");
  EXPECT_EQ(rows[1][0], "row");
  EXPECT_EQ(rows[1][1], "0.123457");
  EXPECT_NE(announce.str().find(path), std::string::npos);
}

TEST(CsvSink, EmptyPathIsNoop) {
  CsvSink sink("", {{"value"}});
  sink.write(sample_record());
  EXPECT_NO_THROW(sink.close());
}

TEST(JsonlSink, EmitsOneObjectPerRecordWithRawNumbers) {
  const std::string path = ::testing::TempDir() + "/engine_sink_test.jsonl";
  {
    JsonlSink sink(path, {{"name"}, {"value"}, {"gap"}});
    sink.write(sample_record());
    sink.write(sample_record());
    sink.close();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"name\":\"row\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"value\":0.123456789"), std::string::npos) << line;
    EXPECT_NE(line.find("\"gap\":null"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 2);
}

TEST(Sink, WriteAfterCloseThrows) {
  TableSink sink({{"value"}});
  sink.close();
  EXPECT_THROW(sink.write(sample_record()), util::Error);
}

// -- run_grid ------------------------------------------------------------

TEST(RunGrid, SerialAndParallelProduceIdenticalRecords) {
  GridSpec grid;
  grid.scenarios(model::all_scenarios())
      .axis(Axis::log_spaced("lambda", 1e-11, 1e-8, 4));

  const EvalFn eval = [](const Point& pt) {
    Record r;
    r.set("index", static_cast<double>(pt.index));
    r.set("scenario", model::scenario_name(*pt.scenario));
    r.set("value", std::log10(pt.var("lambda")) *
                       static_cast<double>(model::scenario_number(
                           *pt.scenario)));
    return r;
  };

  const auto serial = run_grid(grid, nullptr, eval);
  exec::ThreadPool pool(4);
  const auto parallel = run_grid(grid, &pool, eval);

  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].num("index"), static_cast<double>(i));
    EXPECT_EQ(serial[i].text("scenario"), parallel[i].text("scenario"));
    EXPECT_DOUBLE_EQ(serial[i].num("value"), parallel[i].num("value"));
  }
}

TEST(RunGrid, EvaluationExceptionsPropagate) {
  GridSpec grid;
  grid.axis(Axis::linear("x", 0.0, 1.0, 8));
  exec::ThreadPool pool(2);
  EXPECT_THROW((void)run_grid(grid, &pool,
                              [](const Point& pt) -> Record {
                                if (pt.index == 5) {
                                  throw std::runtime_error("point failed");
                                }
                                return {};
                              }),
               std::runtime_error);
}

// -- group_by / collect / pivot -----------------------------------------

std::vector<Record> grouped_records() {
  std::vector<Record> records;
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      Record r;
      r.set("group", s == 0 ? "a" : "b");
      r.set("x", static_cast<double>(i));
      r.set("y", static_cast<double>(10 * s + i));
      records.push_back(std::move(r));
    }
  }
  return records;
}

TEST(GroupBy, PreservesOrderWithinAndAcrossGroups) {
  const auto records = grouped_records();
  const auto groups = group_by(records, "group");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, "a");
  EXPECT_EQ(groups[1].first, "b");
  ASSERT_EQ(groups[0].second.size(), 3u);
  EXPECT_DOUBLE_EQ(groups[1].second[2]->num("y"), 12.0);

  const auto ys = collect(groups[1].second, "y");
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 10.0);
}

TEST(Pivot, BuildsCrossTabWithMissingCells) {
  auto records = grouped_records();
  records.pop_back();  // (b, x=2) missing -> "-" cell
  const io::Table t =
      pivot(records, {"x", "x", 3}, "group", {"", "y", 3});
  EXPECT_EQ(t.columns(), 3u);  // x, a, b
  EXPECT_EQ(t.rows(), 3u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("11"), std::string::npos);
  // The last row's "b" cell is the placeholder.
  EXPECT_NE(s.find('-'), std::string::npos);
}

TEST(ApplyEvalAxes, OverridesAdaptiveKnobsPerPoint) {
  EvalSpec base;
  base.sim_optimize = true;
  base.sim_search.period.adaptive.ci_rel_tol = 0.02;
  base.sim_search.period.adaptive.max_replicas = 4096;

  Point pt;
  pt.vars = {{"ci_rel_tol", 0.1}, {"max_reps", 64.0}, {"weibull_k", 0.7}};
  const EvalSpec spec = apply_eval_axes(base, pt);
  EXPECT_DOUBLE_EQ(spec.sim_search.period.adaptive.ci_rel_tol, 0.1);
  EXPECT_EQ(spec.sim_search.period.adaptive.max_replicas, 64u);
  // A cap below the starting count pulls the start down with it instead
  // of leaving an invalid min > max combination for the adaptive driver.
  EvalSpec high_start = base;
  high_start.sim_search.period.adaptive.min_replicas = 120;
  Point capped;
  capped.vars = {{"max_reps", 16.0}};
  const EvalSpec clamped = apply_eval_axes(high_start, capped);
  EXPECT_EQ(clamped.sim_search.period.adaptive.max_replicas, 16u);
  EXPECT_EQ(clamped.sim_search.period.adaptive.min_replicas, 16u);
  // The base spec is untouched and axes absent from a point stay at the
  // base values.
  EXPECT_DOUBLE_EQ(base.sim_search.period.adaptive.ci_rel_tol, 0.02);
  Point plain;
  const EvalSpec unchanged = apply_eval_axes(base, plain);
  EXPECT_DOUBLE_EQ(unchanged.sim_search.period.adaptive.ci_rel_tol, 0.02);
  EXPECT_EQ(unchanged.sim_search.period.adaptive.max_replicas, 4096u);
}

}  // namespace
}  // namespace ayd::engine
