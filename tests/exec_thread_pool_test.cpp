#include "ayd/exec/thread_pool.hpp"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace ayd::exec {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor must wait for all 100
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(parallel_for(pool, 0, [](std::size_t) { FAIL(); }));
}

TEST(ParallelFor, FirstExceptionRethrown) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i % 10 == 3) {
                                throw std::runtime_error("task failed");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelFor, RethrownExceptionCarriesTaskMessage) {
  ThreadPool pool(4);
  try {
    parallel_for(pool, 64, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("task 17 failed");
    });
    FAIL() << "parallel_for swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 17 failed");
  }
}

TEST(ParallelFor, PoolRemainsUsableAfterTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The engine relies on this: one failed grid evaluation must not wedge
  // the pool for the next run.
  std::atomic<int> done{0};
  parallel_for(pool, 100, [&](std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelMap, ResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, WorksWithSingleThread) {
  ThreadPool pool(1);
  const auto out = parallel_map(pool, 10, [](std::size_t i) {
    return static_cast<double>(i) * 0.5;
  });
  EXPECT_DOUBLE_EQ(out[9], 4.5);
}

TEST(ParallelFor, ActuallyRunsConcurrently) {
  // With 2+ workers, two tasks that wait on each other can both make
  // progress only if they run on different threads.
  ThreadPool pool(2);
  std::atomic<int> stage{0};
  parallel_for(pool, 2, [&](std::size_t i) {
    if (i == 0) {
      ++stage;
      while (stage.load() < 2) std::this_thread::yield();
    } else {
      while (stage.load() < 1) std::this_thread::yield();
      ++stage;
    }
  });
  EXPECT_EQ(stage.load(), 2);
}

TEST(ThreadPool, ManySmallTasksStress) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  parallel_for(pool, 20000, [&](std::size_t i) {
    total += static_cast<long>(i % 7);
  });
  long expected = 0;
  for (std::size_t i = 0; i < 20000; ++i) expected += static_cast<long>(i % 7);
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace ayd::exec
