// Unit tests of the JSON parser (io/json_parse): RFC 8259 acceptance,
// error rejection, integer preservation, and exact round-tripping through
// the JsonWriter (the property the service's canonical re-serialisation
// and byte-identical cached replies stand on).

#include "ayd/io/json_parse.hpp"

#include <clocale>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

#include "ayd/io/json.hpp"
#include "ayd/util/error.hpp"

namespace ayd::io {
namespace {

/// Installs a comma-decimal LC_NUMERIC for one test (restored on
/// destruction) or reports that none is available on this host.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    static const char* const kCandidates[] = {
        "de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
        "de_DE",       "fr_FR",      "nl_NL.UTF-8"};
    for (const char* name : kCandidates) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        // Only a locale that actually uses ',' exercises the bug.
        if (std::localeconv()->decimal_point[0] == ',') {
          installed_ = true;
          return;
        }
      }
    }
    std::setlocale(LC_NUMERIC, "C");
  }
  ~CommaLocaleGuard() { std::setlocale(LC_NUMERIC, "C"); }
  [[nodiscard]] bool installed() const { return installed_; }

 private:
  bool installed_ = false;
};

std::string reserialize(const std::string& text) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  parse_json(text).write(w);
  return os.str();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e-8").as_double(), 1e-8);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerVsDoubleIsPreserved) {
  EXPECT_TRUE(parse_json("7").is_integer());
  EXPECT_FALSE(parse_json("7.0").is_integer());
  EXPECT_FALSE(parse_json("7e0").is_integer());
  EXPECT_DOUBLE_EQ(parse_json("7.0").as_double(), 7.0);
  // An integer literal past int64 falls back to double instead of failing.
  const JsonValue big = parse_json("99999999999999999999");
  EXPECT_TRUE(big.is_number());
  EXPECT_FALSE(big.is_integer());
  EXPECT_GT(big.as_double(), 9.9e19);
}

TEST(JsonParse, ObjectsKeepMemberOrderAndSupportLookup) {
  const JsonValue v = parse_json(R"({"b": 1, "a": {"c": [1, 2, 3]}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.at("b").as_int(), 1);
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.at("a").at("c").as_array().size(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), util::InvalidArgument);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  // Non-ASCII BMP code point -> UTF-8.
  EXPECT_EQ(parse_json(R"("\u00e9")").as_string(), "\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
        "1e", "+1", "\"unterminated", "\"bad\\q\"", "{\"a\":1} trailing",
        "{'a':1}", "[1 2]", "\"\\ud800\"", "nan", "{\"a\":1,}"}) {
    EXPECT_THROW((void)parse_json(bad), util::InvalidArgument) << bad;
  }
  // Raw control characters must be escaped.
  EXPECT_THROW((void)parse_json("\"a\nb\""), util::InvalidArgument);
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW((void)parse_json(deep, /*max_depth=*/64),
               util::InvalidArgument);
  EXPECT_NO_THROW((void)parse_json(deep, /*max_depth=*/128));
}

TEST(JsonParse, CompactReserializationIsStable) {
  // parse -> write -> parse -> write is a fixed point: the canonical
  // compact form the service caches and compares.
  const std::string text =
      R"({"op":"optimize","id":3,"procs":512,"alpha":0.1,)"
      R"("lambda":9.9999999999999998e-09,"flags":[true,false,null],)"
      R"("note":"a\"b"})";
  const std::string once = reserialize(text);
  EXPECT_EQ(reserialize(once), once);
  // Integers stay integers, and doubles keep their exact value (%g drops
  // redundant digits: the double written as 9.9999999999999998e-09 IS
  // 1e-08, and canonicalises to the shorter spelling).
  EXPECT_NE(once.find("\"id\":3"), std::string::npos);
  EXPECT_NE(once.find("\"lambda\":1e-08"), std::string::npos);
  EXPECT_DOUBLE_EQ(parse_json(once).at("lambda").as_double(), 1e-8);
}

TEST(JsonParse, WhitespaceIsTolerantOutsideStrings) {
  const JsonValue v = parse_json("  \t{ \"a\" : [ 1 , 2 ] }\r\n ");
  EXPECT_EQ(v.at("a").as_array()[1].as_int(), 2);
}

TEST(JsonParse, NumbersAreLocaleIndependent) {
  // Regression: the parser used std::strtod, which honours LC_NUMERIC —
  // under a comma-decimal locale it stopped at the '.' and silently
  // truncated "0.5" to 0. std::from_chars is locale-independent by
  // specification; this pins it under a hostile locale when the host has
  // one installed.
  CommaLocaleGuard locale;
  if (!locale.installed()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host; the "
                    "from_chars fix is locale-independent by construction";
  }
  const JsonValue v = parse_json(R"({"a":0.5,"b":1.25e-3,"c":-7.75})");
  EXPECT_EQ(v.at("a").as_double(), 0.5);
  EXPECT_EQ(v.at("b").as_double(), 1.25e-3);
  EXPECT_EQ(v.at("c").as_double(), -7.75);
  // And the writer emits '.' regardless of the locale (to_chars).
  EXPECT_EQ(reserialize(R"({"a":0.5})"), R"({"a":0.5})");
}

TEST(JsonParse, NumberRangeLimits) {
  // Overflow is an error; underflow resolves to the nearest
  // representable value (zero), matching the old strtod behaviour.
  EXPECT_THROW((void)parse_json("1e999"), util::Error);
  EXPECT_THROW((void)parse_json("-1e999"), util::Error);
  EXPECT_EQ(parse_json("1e-999").as_double(), 0.0);
}

}  // namespace
}  // namespace ayd::io
