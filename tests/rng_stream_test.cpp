#include "ayd/rng/stream.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <set>
#include <vector>

namespace ayd::rng {
namespace {

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, SubstreamsAreDeterministic) {
  RngStream a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_uniform01(), b.next_uniform01());
  }
}

TEST(RngStream, DifferentStreamIdsDiffer) {
  RngStream a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngStream, ManySubstreamsHaveDistinctPrefixes) {
  std::set<std::uint64_t> first_outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    RngStream s(123, i);
    first_outputs.insert(s.next_u64());
  }
  EXPECT_EQ(first_outputs.size(), 1000u);
}

TEST(RngStream, ChildStreamsDiffer) {
  RngStream parent(9);
  RngStream c0 = parent.child(0);
  RngStream c1 = parent.child(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
}

TEST(RngStream, ExponentialZeroRateConsumesButReturnsInf) {
  RngStream a(1, 2), b(1, 2);
  EXPECT_TRUE(std::isinf(a.next_exponential(0.0)));
  (void)b.next_u64();  // consume one word manually
  // Streams must be aligned again: same next value.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, HelpersMatchFreeFunctions) {
  RngStream s(5, 6);
  Xoshiro256 raw(mix64(5, 6));
  EXPECT_DOUBLE_EQ(s.next_uniform01(), uniform01(raw));
  EXPECT_DOUBLE_EQ(s.next_exponential(2.0), exponential(raw, 2.0));
  EXPECT_DOUBLE_EQ(s.next_uniform(1.0, 3.0), uniform(raw, 1.0, 3.0));
  EXPECT_EQ(s.next_index(10), uniform_index(raw, 10));
}

TEST(RngStream, ReplicaPartitioningIsOrderIndependent) {
  // The value replica i produces depends only on (seed, i) — compute them
  // in two different orders and compare.
  std::vector<double> forward, backward(100);
  for (std::uint64_t i = 0; i < 100; ++i) {
    RngStream s(2016, i);
    forward.push_back(s.next_exponential(1.0));
  }
  for (int i = 99; i >= 0; --i) {
    RngStream s(2016, static_cast<std::uint64_t>(i));
    backward[static_cast<std::size_t>(i)] = s.next_exponential(1.0);
  }
  EXPECT_EQ(forward, backward);
}

}  // namespace
}  // namespace ayd::rng
