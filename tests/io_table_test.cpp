#include "ayd/io/table.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "ayd/util/error.hpp"

namespace ayd::io {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.set_align(0, Align::kLeft);
  t.add_row({"x", "1"});
  t.add_row({"longer", "23456"});
  const std::string out = t.to_string();
  // Every line has equal length (header, rule, two rows).
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << out;
  }
}

TEST(Table, RightAlignmentPadsLeft) {
  Table t({"v"});
  t.add_row({"1"});
  t.add_row({"100"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("  1\n"), std::string::npos) << out;
}

TEST(Table, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.23456789, 1e-9}, 4);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("1.235"), std::string::npos);
  EXPECT_NE(out.find("1e-09"), std::string::npos);
}

TEST(Table, MarkdownStyle) {
  Table t({"h1", "h2"}, Table::Style::kMarkdown);
  t.add_row({"a", "b"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| h1 | h2 |"), std::string::npos) << out;
  EXPECT_NE(out.find("|---"), std::string::npos) << out;
}

TEST(Table, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), util::InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), util::InvalidArgument);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), util::InvalidArgument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, StreamOperator) {
  Table t({"x"});
  t.add_row({"42"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Table, SetAlignValidatesColumn) {
  Table t({"a"});
  EXPECT_THROW(t.set_align(1, Align::kLeft), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::io
