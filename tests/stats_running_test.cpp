#include "ayd/stats/running.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

namespace ayd::stats {
namespace {

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, StderrShrinksWithSqrtN) {
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 10000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(small.stderr_mean() / large.stderr_mean(), 10.0, 0.1);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const double x = std::sin(0.1 * i) * 10.0 + i * 0.01;
    (i < 200 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats b = a;
  b.merge(empty);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  RunningStats c = empty;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Welford must not lose the variance of values near a huge mean.
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace ayd::stats
