// Unit tests of the planning service's memoisation layer: canonical
// scenario keying (service/canonical) and the sharded single-flight LRU
// cache (service/memo_cache). The service-level cache semantics —
// warm-hit replies byte-identical to cold-miss, spelling-invariant keys —
// are covered end-to-end in service_protocol_test.cpp.

#include "ayd/service/memo_cache.hpp"

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/model/system.hpp"
#include "ayd/service/canonical.hpp"

namespace ayd::service {
namespace {

CanonicalKey key_of(const std::string& tag) {
  return CanonicalKeyBuilder("test").field("tag", tag).finish();
}

// -- canonical keying ----------------------------------------------------

TEST(CanonicalKey, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(CanonicalKey, BuilderIsDeterministic) {
  const auto build = [] {
    return CanonicalKeyBuilder("optimize")
        .system(model::System::from_platform(model::hera(),
                                             model::Scenario::kS3))
        .field("procs", 512.0)
        .field("simulate", true)
        .finish();
  };
  const CanonicalKey a = build();
  const CanonicalKey b = build();
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.hash, fnv1a64(a.text));
}

TEST(CanonicalKey, DistinguishesEverySemanticField) {
  const model::System base =
      model::System::from_platform(model::hera(), model::Scenario::kS3);
  const CanonicalKey ref =
      CanonicalKeyBuilder("optimize").system(base).finish();
  const std::vector<model::System> variants = {
      base.with_lambda(2e-8),
      base.with_downtime(60.0),
      base.with_speedup(model::Speedup::amdahl(0.2)),
      base.with_failure_dist(model::FailureDistSpec::weibull(0.7)),
      model::System::from_platform(model::hera(), model::Scenario::kS1),
      model::System::from_platform(model::atlas(), model::Scenario::kS3),
  };
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const CanonicalKey k =
        CanonicalKeyBuilder("optimize").system(variants[i]).finish();
    EXPECT_NE(k.text, ref.text) << "variant " << i;
  }
  // A different op over the same system is a different key too.
  EXPECT_NE(CanonicalKeyBuilder("plan").system(base).finish().text,
            ref.text);
}

TEST(CanonicalKey, DistinguishesCorrelatedWorldExtensions) {
  // The "ext" member splits extended worlds from the plain system and
  // from each other along every extension axis.
  const model::System base =
      model::System::from_platform(model::hera(), model::Scenario::kS3);
  const CanonicalKey ref =
      CanonicalKeyBuilder("optimize").system(base).finish();

  model::HeterogeneousSpec hetero;
  hetero.groups = {{0.5, 1.5, model::FailureDistSpec::weibull(0.7)},
                   {0.5, 0.5, {}}};
  model::System two_tier_base = base.with_shock({0.4, 0.05});
  const std::vector<model::System> variants = {
      base.with_shock({0.4, 0.05}),
      base.with_shock({0.5, 0.05}),
      base.with_shock({0.4, 0.1}),
      base.with_shock(
          {0.4, 0.05, model::FailureDistSpec::weibull(0.7)}),
      base.with_heterogeneity(hetero),
      two_tier_base.with_two_tier(
          model::TwoTierCostSpec::from_penalty(two_tier_base.costs(), 4.0)),
  };
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const CanonicalKey k =
        CanonicalKeyBuilder("optimize").system(variants[i]).finish();
    EXPECT_NE(k.text, ref.text) << "variant " << i;
    texts.push_back(k.text);
  }
  for (std::size_t i = 0; i < texts.size(); ++i) {
    for (std::size_t j = i + 1; j < texts.size(); ++j) {
      EXPECT_NE(texts[i], texts[j]) << "variants " << i << " and " << j;
    }
  }
}

TEST(CanonicalKey, DegenerateExtensionsShareThePlainSystemKey) {
  // Degenerate specs normalize away at construction, so the canonical
  // key — and therefore every cached answer — is shared with the plain
  // system rather than split by a semantically empty extension.
  const model::System base =
      model::System::from_platform(model::hera(), model::Scenario::kS3);
  const CanonicalKey ref =
      CanonicalKeyBuilder("optimize").system(base).finish();

  model::HeterogeneousSpec uniform;
  uniform.groups = {{1.0, 1.0, base.failure().dist()}};
  const std::vector<model::System> degenerate = {
      base.with_shock({0.0, 0.05}),
      base.with_heterogeneity(uniform),
      base.with_two_tier(
          model::TwoTierCostSpec::from_penalty(base.costs(), 1.0)),
  };
  for (std::size_t i = 0; i < degenerate.size(); ++i) {
    EXPECT_FALSE(degenerate[i].extended()) << "variant " << i;
    const CanonicalKey k =
        CanonicalKeyBuilder("optimize").system(degenerate[i]).finish();
    EXPECT_EQ(k.text, ref.text) << "variant " << i;
  }
}

TEST(CanonicalKey, ExactParametersNotFormattedOnes) {
  // 0.1 and 0.1000001 collapse under 4-significant-digit formatting
  // (Speedup::name()); canonical keys must keep them apart.
  const model::System a =
      model::System::from_platform(model::hera(), model::Scenario::kS3, 0.1);
  const model::System b = model::System::from_platform(
      model::hera(), model::Scenario::kS3, 0.1000001);
  EXPECT_NE(CanonicalKeyBuilder("optimize").system(a).finish().text,
            CanonicalKeyBuilder("optimize").system(b).finish().text);
}

// -- memo cache ----------------------------------------------------------

TEST(MemoCache, MissThenHitServesTheCachedValue) {
  MemoCache cache(8, 2);
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return std::string("value");
  };
  const auto first = cache.get_or_compute(key_of("k"), compute);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(*first.value, "value");
  const auto second = cache.get_or_compute(key_of("k"), compute);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(*second.value, "value");
  EXPECT_EQ(computed, 1);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(MemoCache, EvictionRespectsCapacityLruOrder) {
  // One shard makes the capacity and the LRU order exact.
  MemoCache cache(3, 1);
  const auto value_for = [](const std::string& tag) {
    return [tag] { return "v:" + tag; };
  };
  (void)cache.get_or_compute(key_of("a"), value_for("a"));
  (void)cache.get_or_compute(key_of("b"), value_for("b"));
  (void)cache.get_or_compute(key_of("c"), value_for("c"));
  // Touch "a" so "b" is the least recently used.
  EXPECT_TRUE(cache.get_or_compute(key_of("a"), value_for("a")).hit);
  (void)cache.get_or_compute(key_of("d"), value_for("d"));
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  // "b" was evicted: asking again recomputes; "a" survived.
  EXPECT_FALSE(cache.get_or_compute(key_of("b"), value_for("b")).hit);
  EXPECT_TRUE(cache.get_or_compute(key_of("a"), value_for("a")).hit);
}

TEST(MemoCache, CapacityHoldsAcrossManyInsertions) {
  MemoCache cache(4, 4);
  for (int i = 0; i < 64; ++i) {
    const std::string tag = "k" + std::to_string(i);
    (void)cache.get_or_compute(key_of(tag), [&] { return tag; });
  }
  const CacheStats stats = cache.stats();
  // Per-shard LRU: at most max_entries resident in total.
  EXPECT_LE(stats.entries, 4u);
  EXPECT_EQ(stats.misses, 64u);
  EXPECT_EQ(stats.misses - stats.entries, stats.evictions);
}

TEST(MemoCache, SingleFlightUnderEightThreads) {
  MemoCache cache(8, 4);
  std::atomic<int> computations{0};
  const CanonicalKey key = key_of("shared");
  std::vector<std::thread> threads;
  std::vector<std::string> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto lookup = cache.get_or_compute(key, [&] {
        ++computations;
        // Long enough that every other thread arrives while in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return std::string("shared-value");
      });
      results[static_cast<std::size_t>(t)] = *lookup.value;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computations.load(), 1);
  for (const std::string& r : results) EXPECT_EQ(r, "shared-value");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, 7u);
}

TEST(MemoCache, FailedComputationIsNotCachedAndPropagates) {
  MemoCache cache(8, 2);
  const CanonicalKey key = key_of("throws");
  EXPECT_THROW(
      (void)cache.get_or_compute(
          key, []() -> std::string { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key retries cleanly after the failure.
  const auto lookup =
      cache.get_or_compute(key, [] { return std::string("recovered"); });
  EXPECT_FALSE(lookup.hit);
  EXPECT_EQ(*lookup.value, "recovered");
}

TEST(MemoCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MemoCache(64, 3).shard_count(), 4u);
  EXPECT_EQ(MemoCache(64, 16).shard_count(), 16u);
  EXPECT_EQ(MemoCache(64, 1).shard_count(), 1u);
  // Shards never exceed the entry budget, so the total resident
  // capacity (shards x per-shard LRU) honours max_entries.
  EXPECT_EQ(MemoCache(2, 16).shard_count(), 2u);
  EXPECT_EQ(MemoCache(5, 16).shard_count(), 4u);
}

}  // namespace
}  // namespace ayd::service
