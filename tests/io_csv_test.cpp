#include "ayd/io/csv.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "ayd/util/error.hpp"

namespace ayd::io {
namespace {

std::string write_rows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  CsvWriter w(os);
  for (const auto& row : rows) w.write_row(row);
  return os.str();
}

TEST(CsvWriter, PlainFields) {
  EXPECT_EQ(write_rows({{"a", "b", "c"}}), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  EXPECT_EQ(write_rows({{"a,b", "c\"d", "e\nf"}}),
            "\"a,b\",\"c\"\"d\",\"e\nf\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<double>{1.5, 2.25}, 6);
  EXPECT_EQ(os.str(), "1.5,2.25\n");
}

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, QuotedFieldsWithCommasAndNewlines) {
  const auto rows = parse_csv("\"a,b\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "line1\nline2");
  EXPECT_EQ(rows[0][2], "he said \"hi\"");
}

TEST(ParseCsv, ToleratesCrlfAndMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, EmptyFields) {
  const auto rows = parse_csv(",x,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x", ""}));
}

TEST(ParseCsv, UnterminatedQuoteRejected) {
  EXPECT_THROW((void)parse_csv("\"abc"), util::InvalidArgument);
}

TEST(ParseCsv, RoundTripsWriterOutput) {
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with\"quote"},
      {"", "second\nline", "x"},
  };
  EXPECT_EQ(parse_csv(write_rows(rows)), rows);
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/ayd_csv_test.csv";
  const std::vector<std::vector<std::string>> rows{{"h1", "h2"},
                                                   {"1", "2"}};
  write_csv_file(path, rows);
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(parse_csv(buf.str()), rows);
  std::remove(path.c_str());
}

TEST(CsvFile, UnwritablePathThrows) {
  EXPECT_THROW(write_csv_file("/nonexistent_dir_xyz/file.csv", {}),
               util::IoError);
}

}  // namespace
}  // namespace ayd::io
