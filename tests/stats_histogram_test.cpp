#include "ayd/stats/histogram.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::stats {
namespace {

TEST(Histogram, BinningEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // first bin (inclusive low edge)
  h.add(9.999);  // last bin
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, NanCountsAsUnderflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, BinBoundsReported) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
  EXPECT_THROW((void)h.bin_lo(4), util::InvalidArgument);
}

TEST(Histogram, FractionOfInRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.26);
  h.add(0.75);
  h.add(5.0);  // overflow: excluded from fractions
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 1.0 / 3.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 1.0, 2), b(0.0, 1.0, 2);
  a.add(0.1);
  b.add(0.2);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeRejectsDifferentBinning) {
  Histogram a(0.0, 1.0, 2), b(0.0, 2.0, 2), c(0.0, 1.0, 3);
  EXPECT_THROW(a.merge(b), util::InvalidArgument);
  EXPECT_THROW(a.merge(c), util::InvalidArgument);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(20);
  EXPECT_NE(out.find("####################"), std::string::npos);  // peak bar
  EXPECT_NE(out.find(" 10"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), util::InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::stats
