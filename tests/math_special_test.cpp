#include "ayd/math/special.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/math/integrate.hpp"
#include "ayd/util/error.hpp"

namespace ayd::math {
namespace {

TEST(Expm1OverX, ExactAtZero) { EXPECT_DOUBLE_EQ(expm1_over_x(0.0), 1.0); }

TEST(Expm1OverX, MatchesDefinitionForModerateX) {
  for (const double x : {-5.0, -1.0, -0.1, 0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(expm1_over_x(x), std::expm1(x) / x, 1e-14 * std::abs(
        std::expm1(x) / x)) << "x=" << x;
  }
}

TEST(Expm1OverX, StableForTinyX) {
  // Series: 1 + x/2 + x^2/6; for x = 1e-12 the linear term matters, the
  // quadratic one is far below epsilon.
  EXPECT_DOUBLE_EQ(expm1_over_x(1e-12), 1.0 + 0.5e-12);
  EXPECT_DOUBLE_EQ(expm1_over_x(-1e-12), 1.0 - 0.5e-12);
}

TEST(Expm1OverX, MonotoneIncreasing) {
  double prev = expm1_over_x(-30.0);
  for (double x = -29.0; x <= 30.0; x += 1.0) {
    const double cur = expm1_over_x(x);
    EXPECT_GT(cur, prev) << "x=" << x;
    prev = cur;
  }
}

TEST(Log1mExp, MatchesDefinition) {
  // Reference uses expm1 so that the reference itself does not cancel for
  // small |x| (log(1 - e^x) == log(-expm1(x)) exactly).
  for (const double x : {-1e-6, -0.1, -0.5, -1.0, -5.0, -50.0}) {
    EXPECT_NEAR(log1mexp(x), std::log(-std::expm1(x)), 1e-12) << "x=" << x;
  }
}

TEST(Log1mExp, RequiresNegative) {
  EXPECT_THROW((void)log1mexp(0.0), util::InvalidArgument);
  EXPECT_THROW((void)log1mexp(1.0), util::InvalidArgument);
}

TEST(Log1pExp, MatchesDefinitionAndTails) {
  for (const double x : {-100.0, -10.0, -1.0, 0.0, 1.0, 10.0, 30.0}) {
    EXPECT_NEAR(log1pexp(x), std::log1p(std::exp(x)), 1e-12) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(log1pexp(1000.0), 1000.0);   // saturates to identity
  EXPECT_DOUBLE_EQ(log1pexp(-1000.0), 0.0);     // saturates to zero
}

TEST(LogAddExp, Identities) {
  EXPECT_NEAR(logaddexp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-14);
  // Symmetric.
  EXPECT_DOUBLE_EQ(logaddexp(1.0, 2.0), logaddexp(2.0, 1.0));
  // No overflow for huge arguments.
  EXPECT_NEAR(logaddexp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-12);
  // -inf is the identity element.
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(logaddexp(ninf, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(logaddexp(5.0, ninf), 5.0);
}

TEST(LogSubExp, Identities) {
  EXPECT_NEAR(logsubexp(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-14);
  EXPECT_NEAR(logsubexp(2000.0, 1999.0), 2000.0 + std::log1p(-std::exp(-1.0)),
              1e-12);
  EXPECT_THROW((void)logsubexp(1.0, 1.0), util::InvalidArgument);
  EXPECT_THROW((void)logsubexp(1.0, 2.0), util::InvalidArgument);
}

TEST(ProbBefore, MatchesDefinitionAndEdges) {
  EXPECT_DOUBLE_EQ(prob_before(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(prob_before(1.0, 0.0), 0.0);
  EXPECT_NEAR(prob_before(2.0, 1.5), 1.0 - std::exp(-3.0), 1e-15);
  // Tiny rate*t: no cancellation; agrees with rate*t up to the quadratic
  // Taylor term (rate*t)^2/2 = 5e-25, which a correct expm1-based
  // implementation keeps (the naive 1-exp form would round it away).
  EXPECT_NEAR(prob_before(1e-9, 1e-3), 1e-12, 1e-24);
}

TEST(ExpectedTimeLost, HalfOfWindowForTinyRates) {
  EXPECT_NEAR(expected_time_lost(1e-12, 100.0), 50.0, 1e-6);
  EXPECT_NEAR(expected_time_lost(0.0, 100.0), 50.0, 1e-9);
}

TEST(ExpectedTimeLost, ApproachesMeanForLongWindows) {
  // Conditioned on striking within a window much longer than 1/rate, the
  // expected strike time approaches the unconditional mean 1/rate.
  EXPECT_NEAR(expected_time_lost(2.0, 1e9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(expected_time_lost(1.0, 1e6), 1.0);  // overflow guard path
}

TEST(ExpectedTimeLost, MatchesDefiningIntegral) {
  // E_lost(w) = ∫ t·rate·e^{-rate t} dt / P(X < w) over [0, w].
  for (const double rate : {0.5, 1.0, 3.0}) {
    for (const double w : {0.2, 1.0, 4.0}) {
      const auto pdf = [rate](double t) {
        return t * rate * std::exp(-rate * t);
      };
      const double numer = integrate(pdf, 0.0, w).value;
      const double denom = 1.0 - std::exp(-rate * w);
      EXPECT_NEAR(expected_time_lost(rate, w), numer / denom, 1e-9)
          << "rate=" << rate << " w=" << w;
    }
  }
}

TEST(ExpectedTimeLost, BelowHalfWindowAlways) {
  // The exponential's decreasing density means the conditional mean is
  // always below w/2.
  for (const double rate : {0.1, 1.0, 10.0}) {
    for (const double w : {0.5, 2.0, 20.0}) {
      EXPECT_LT(expected_time_lost(rate, w), 0.5 * w + 1e-12);
    }
  }
}

TEST(IsClose, RelativeAndAbsolute) {
  EXPECT_TRUE(is_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(is_close(1.0, 1.1));
  EXPECT_TRUE(is_close(0.0, 1e-12, 1e-9, 1e-9));
  EXPECT_FALSE(is_close(0.0, 1e-6, 1e-9, 1e-9));
  EXPECT_TRUE(is_close(1e300, 1e300 * (1 + 1e-10)));
}

TEST(IsClose, NanAndInf) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(is_close(nan, nan));
  EXPECT_TRUE(is_close(inf, inf));
  EXPECT_FALSE(is_close(inf, 1e308));
}

TEST(RelDiff, Basics) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_diff(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace ayd::math
