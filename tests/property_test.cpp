// Property-based tests: invariants of the model, the optimisers and the
// simulator over randomly generated (but reproducible) system
// configurations, swept with parameterised gtest.

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/math/special.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/two_level_protocol.hpp"

namespace ayd {
namespace {

using core::Pattern;
using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

/// Deterministic random system drawn from wide but sane parameter ranges.
struct RandomConfig {
  System sys;
  Pattern pattern;
};

RandomConfig draw_config(std::uint64_t index) {
  rng::RngStream r(0xC0FFEE, index);
  double lambda = std::pow(10.0, r.next_uniform(-10.0, -6.0));
  const double f = r.next_uniform(0.0, 1.0);
  // Random cost shapes: each coefficient present with probability 1/2,
  // at least one nonzero overall.
  const auto draw_cost = [&r](double scale) {
    double a = r.next_bernoulli(0.5) ? r.next_uniform(1.0, scale) : 0.0;
    const double b =
        r.next_bernoulli(0.5) ? r.next_uniform(10.0, 100.0 * scale) : 0.0;
    const double c = r.next_bernoulli(0.3) ? r.next_uniform(0.01, 1.0) : 0.0;
    if (a == 0.0 && b == 0.0 && c == 0.0) a = scale;
    return CostModel(a, b, c);
  };
  const CostModel checkpoint = draw_cost(500.0);
  const CostModel verification =
      CostModel(r.next_uniform(0.5, 50.0), r.next_uniform(0.0, 1000.0), 0.0);
  const double downtime = r.next_uniform(0.0, 7200.0);
  const double alpha = std::pow(10.0, r.next_uniform(-4.0, -0.5));
  const double procs = std::floor(std::pow(10.0, r.next_uniform(0.5, 3.5)));
  const double period = std::pow(10.0, r.next_uniform(2.0, 5.0));

  // Feasibility guard: clamp the total error exposure of one attempt,
  // λ_P·(T + V + C + R), into [0.2, 1.5] by rescaling λ. The upper bound
  // keeps the expected number of re-executions O(1) — the paper's
  // operating regime — so the simulation property finishes quickly. The
  // lower bound guarantees error events actually occur in a ~10^3-pattern
  // run; below it the sample variance of a simulation is zero (every
  // pattern is fault-free) and no finite run can measure the formula's
  // rare-event mass. The extreme-rate regimes are covered analytically by
  // the dedicated core tests.
  const double attempt_span = period + verification.cost(procs) +
                              2.0 * checkpoint.cost(procs);
  const double exposure = lambda * procs * attempt_span;
  if (exposure > 1.5) lambda *= 1.5 / exposure;
  if (exposure < 0.2) lambda *= 0.2 / exposure;

  const System sys(FailureModel(lambda, f),
                   ResilienceCosts{checkpoint, checkpoint, verification},
                   downtime, Speedup::amdahl(alpha));
  return {sys, Pattern{period, procs}};
}

class SystemProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemProperties, ExpectedTimeExceedsFaultFreeTime) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double floor = pattern.period +
                       sys.verification_cost(pattern.procs) +
                       sys.checkpoint_cost(pattern.procs);
  EXPECT_GE(core::expected_pattern_time(sys, pattern), floor);
}

TEST_P(SystemProperties, CompositionMatchesClosedForm) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double a = core::expected_pattern_time(sys, pattern);
  const double b = core::expected_pattern_time_direct(sys, pattern);
  if (std::isfinite(a) && std::isfinite(b)) {
    EXPECT_LT(math::rel_diff(a, b), 1e-8);
  }
}

TEST_P(SystemProperties, ComponentsSumToTotal) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double total = core::expected_pattern_time(sys, pattern);
  if (!std::isfinite(total)) GTEST_SKIP();
  const double parts = core::expected_work_time(sys, pattern) +
                       core::expected_checkpoint_time(sys, pattern);
  EXPECT_LT(math::rel_diff(total, parts), 1e-12);
}

TEST_P(SystemProperties, LogFormMatchesLinearForm) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double e = core::expected_pattern_time(sys, pattern);
  if (!std::isfinite(e)) GTEST_SKIP();
  EXPECT_NEAR(core::log_expected_pattern_time(sys, pattern), std::log(e),
              1e-9);
}

TEST_P(SystemProperties, ExpectedTimeMonotoneInPeriod) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double e1 = core::expected_pattern_time(sys, pattern);
  const double e2 = core::expected_pattern_time(
      sys, {pattern.period * 1.5, pattern.procs});
  if (std::isfinite(e1) && std::isfinite(e2)) {
    EXPECT_GT(e2, e1);
  }
}

TEST_P(SystemProperties, OverheadExceedsErrorFreeOverhead) {
  const auto [sys, pattern] = draw_config(GetParam());
  // H(T,P) > H(P): resilience always costs something.
  EXPECT_GT(core::pattern_overhead(sys, pattern),
            sys.error_free_overhead(pattern.procs));
}

TEST_P(SystemProperties, OptimalPeriodBeatsNeighbours) {
  const auto [sys, pattern] = draw_config(GetParam());
  const core::PeriodOptimum opt = core::optimal_period(sys, pattern.procs);
  if (opt.at_boundary) GTEST_SKIP();
  const double h = opt.log_overhead;
  EXPECT_LE(h, core::log_pattern_overhead(
                   sys, {opt.period * 1.3, pattern.procs}) + 1e-12);
  EXPECT_LE(h, core::log_pattern_overhead(
                   sys, {opt.period / 1.3, pattern.procs}) + 1e-12);
}

TEST_P(SystemProperties, FirstOrderPeriodNearNumericalOptimum) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double t_fo = core::optimal_period_first_order(sys, pattern.procs);
  if (!std::isfinite(t_fo)) GTEST_SKIP();
  // Theorem 1 is a first-order result: only claim accuracy inside its
  // validity regime (λ-weighted exposure of the optimal period small).
  const double exposure = (sys.fail_stop_rate(pattern.procs) / 2.0 +
                           sys.silent_rate(pattern.procs)) *
                          t_fo;
  if (exposure > 0.3) GTEST_SKIP();
  const core::PeriodOptimum num = core::optimal_period(sys, pattern.procs);
  if (num.at_boundary) GTEST_SKIP();
  // Overheads (not periods) are the robust comparison: H is flat near T*.
  const double h_fo =
      core::pattern_overhead(sys, {t_fo, pattern.procs});
  EXPECT_LT((h_fo - num.overhead) / num.overhead, 0.05);
}

TEST_P(SystemProperties, SimulationAgreesWithFormula) {
  const auto [sys, pattern] = draw_config(GetParam());
  const double expected = core::expected_pattern_time(sys, pattern);
  if (!std::isfinite(expected)) GTEST_SKIP();
  sim::ReplicationOptions opt;
  opt.replicas = 24;
  opt.patterns_per_replica = 40;
  opt.seed = GetParam() * 7919 + 13;
  const sim::ReplicationResult r = sim::simulate_overhead(sys, pattern, opt);
  const double z = (r.pattern_time.mean - expected) /
                   std::max(r.pattern_time.stderr_mean, 1e-12 * expected);
  EXPECT_LT(std::abs(z), 6.0) << "simulated " << r.pattern_time.mean
                              << " expected " << expected;
}

TEST_P(SystemProperties, TwoLevelReducesToBaseAtOneSegment) {
  // With n = 1 and the level-1 recovery priced like the base recovery,
  // the two-level expectation must coincide with Proposition 1 on every
  // random configuration.
  const auto [sys, pattern] = draw_config(GetParam());
  const core::TwoLevelSystem two{sys, sys.costs().recovery};
  const double base = core::expected_pattern_time(sys, pattern);
  if (!std::isfinite(base)) GTEST_SKIP();
  const double reduced = core::expected_two_level_time(
      two, {pattern.period, pattern.procs, 1});
  EXPECT_LT(math::rel_diff(base, reduced), 1e-9);
}

TEST_P(SystemProperties, TwoLevelExceedsFaultFreeFloor) {
  const auto [sys, pattern] = draw_config(GetParam());
  const core::TwoLevelSystem two =
      core::TwoLevelSystem::with_memory_level1(sys);
  for (const int n : {1, 3, 8}) {
    const double p = pattern.procs;
    const double floor =
        pattern.period + n * sys.verification_cost(p) +
        (n - 1) * two.level1_cost(p) + sys.checkpoint_cost(p);
    const double e = core::expected_two_level_time(
        two, {pattern.period, pattern.procs, n});
    if (std::isfinite(e)) {
      EXPECT_GE(e, floor - 1e-9 * floor) << "n=" << n;
    }
  }
}

TEST_P(SystemProperties, TwoLevelSimulationAgreesWithFormula) {
  const auto [sys, pattern] = draw_config(GetParam());
  const core::TwoLevelSystem two =
      core::TwoLevelSystem::with_memory_level1(sys);
  const core::TwoLevelPattern pat{pattern.period, pattern.procs, 3};
  const double expected = core::expected_two_level_time(two, pat);
  if (!std::isfinite(expected)) GTEST_SKIP();
  sim::ReplicationOptions opt;
  opt.replicas = 24;
  opt.patterns_per_replica = 40;
  opt.seed = GetParam() * 6151 + 29;
  const sim::ReplicationResult r =
      sim::simulate_two_level_overhead(two, pat, opt);
  const double z = (r.pattern_time.mean - expected) /
                   std::max(r.pattern_time.stderr_mean, 1e-12 * expected);
  EXPECT_LT(std::abs(z), 6.0) << "simulated " << r.pattern_time.mean
                              << " expected " << expected;
}

TEST_P(SystemProperties, ZeroShockRateReproducesIidStreamBitwise) {
  // rho = 0 normalizes away at construction: the "extended" system is
  // the plain system, takes the plain bit-pinned simulators, and
  // reproduces their streams bitwise — not just in distribution.
  const auto [sys, pattern] = draw_config(GetParam());
  const System with = sys.with_shock({0.0, 0.1});
  EXPECT_FALSE(with.extended());
  sim::ReplicationOptions opt;
  opt.replicas = 8;
  opt.patterns_per_replica = 20;
  opt.seed = GetParam() * 7919 + 13;
  const sim::ReplicationResult a = sim::simulate_overhead(sys, pattern, opt);
  const sim::ReplicationResult b = sim::simulate_overhead(with, pattern, opt);
  EXPECT_EQ(a.overhead.mean, b.overhead.mean);
  EXPECT_EQ(a.pattern_time.mean, b.pattern_time.mean);
  EXPECT_EQ(a.fail_stops_per_pattern, b.fail_stops_per_pattern);
  EXPECT_EQ(b.shock_errors_per_pattern, 0.0);
}

TEST_P(SystemProperties, HomogeneousEquivalentGroupsCollapseBitwise) {
  // Identical per-component specs merge into one class (the platform
  // process is defined per distinct class), and a single x1 class at the
  // base law is no extension at all — again a bitwise reproduction.
  const auto [sys, pattern] = draw_config(GetParam());
  model::HeterogeneousSpec hetero;
  hetero.groups = {{0.25, 1.0, sys.failure().dist()},
                   {0.5, 1.0, sys.failure().dist()},
                   {0.25, 1.0, sys.failure().dist()}};
  const System with = sys.with_heterogeneity(hetero);
  EXPECT_FALSE(with.extended());
  sim::ReplicationOptions opt;
  opt.replicas = 8;
  opt.patterns_per_replica = 20;
  opt.seed = GetParam() * 6151 + 29;
  const sim::ReplicationResult a = sim::simulate_overhead(sys, pattern, opt);
  const sim::ReplicationResult b = sim::simulate_overhead(with, pattern, opt);
  EXPECT_EQ(a.overhead.mean, b.overhead.mean);
  EXPECT_EQ(a.pattern_time.mean, b.pattern_time.mean);
}

TEST_P(SystemProperties, EqualTierTwoTierSpecFoldsToSingleTier) {
  // phi = 1 prices both recovery tiers identically; the spec folds into
  // the plain cost model (checkpoint = bb_write + pfs_write, recovery =
  // bb_recovery) and the system stays non-extended.
  const auto [sys, pattern] = draw_config(GetParam());
  const System with = sys.with_two_tier(
      model::TwoTierCostSpec::from_penalty(sys.costs(), 1.0));
  EXPECT_FALSE(with.extended());
  const double p = pattern.procs;
  EXPECT_EQ(with.checkpoint_cost(p), sys.checkpoint_cost(p));
  EXPECT_EQ(with.recovery_cost(p), sys.recovery_cost(p));
  EXPECT_EQ(with.verification_cost(p), sys.verification_cost(p));
  sim::ReplicationOptions opt;
  opt.replicas = 8;
  opt.patterns_per_replica = 20;
  opt.seed = GetParam() * 4231 + 7;
  const sim::ReplicationResult a = sim::simulate_overhead(sys, pattern, opt);
  const sim::ReplicationResult b = sim::simulate_overhead(with, pattern, opt);
  EXPECT_EQ(a.overhead.mean, b.overhead.mean);
  EXPECT_EQ(a.pattern_time.mean, b.pattern_time.mean);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, SystemProperties,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace ayd
