#include "ayd/rng/xoshiro256.hpp"

#include <gtest/gtest.h>
#include <set>

#include "ayd/rng/splitmix64.hpp"

namespace ayd::rng {
namespace {

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference sequence for seed 0 (Vigna's splitmix64.c test vector).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06C45D188009454FULL);
}

TEST(SplitMix64, Bijective) {
  // Distinct inputs give distinct outputs on a sample.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    std::uint64_t s = i;
    outputs.insert(splitmix64_next(s));
  }
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(Mix64, DistinctPairsDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      outputs.insert(mix64(a, b));
    }
  }
  EXPECT_EQ(outputs.size(), 64u * 64u);
}

TEST(Mix64, OrderSensitive) { EXPECT_NE(mix64(1, 2), mix64(2, 1)); }

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Xoshiro256, StateNeverAllZero) {
  Xoshiro256 eng(0);  // seed 0 must still produce a live state
  const auto& s = eng.state();
  EXPECT_TRUE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0);
  // And the generator must not be stuck.
  const auto x = eng();
  const auto y = eng();
  EXPECT_NE(x, y);
}

TEST(Xoshiro256, JumpChangesStateDeterministically) {
  Xoshiro256 a(7), b(7);
  a.jump();
  EXPECT_NE(a.state(), b.state());
  Xoshiro256 c(7);
  c.jump();
  EXPECT_EQ(a.state(), c.state());
}

TEST(Xoshiro256, JumpedStreamsDoNotOverlapShortRange) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  // Collect a window from each; with a 2^128 jump they must be disjoint
  // in any feasible sample.
  std::set<std::uint64_t> wa;
  for (int i = 0; i < 1000; ++i) wa.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(wa.count(b()), 0u);
}

TEST(Xoshiro256, LongJumpDiffersFromJump) {
  Xoshiro256 a(5), b(5);
  a.jump();
  b.long_jump();
  EXPECT_NE(a.state(), b.state());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~std::uint64_t{0});
}

TEST(Xoshiro256, EqualityComparesState) {
  Xoshiro256 a(3), b(3);
  EXPECT_TRUE(a == b);
  (void)a();
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ayd::rng
