// The shared-memory transport, layer by layer: the lock-free ring
// (FIFO, wrap-around, fullness, MPMC races, torn-push tombstoning), the
// segment lifecycle (version-mismatch and live-server refusal, stale
// recovery, clean unlink), and in-process end-to-end round trips whose
// warm-hit replies must be byte-identical to the pipe transport's
// handle_line for the same request. Cross-process races live in
// service_shm_stress_test.cpp / service_shm_crash_test.cpp.

#include "ayd/service/shm_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ayd/service/server.hpp"
#include "ayd/service/shm_ring.hpp"
#include "ayd/util/error.hpp"

namespace ayd::service {
namespace {

/// Cache-line-aligned backing block for in-process ring tests.
struct RingBlock {
  explicit RingBlock(std::size_t bytes)
      : data(static_cast<char*>(
            ::operator new(bytes, std::align_val_t(kShmCacheLine)))),
        size(bytes) {}
  ~RingBlock() {
    ::operator delete(data, std::align_val_t(kShmCacheLine));
  }
  RingBlock(const RingBlock&) = delete;
  RingBlock& operator=(const RingBlock&) = delete;
  char* data;
  std::size_t size;
};

/// Unique segment names so parallel ctest invocations cannot collide.
std::string unique_name(const char* tag) {
  return std::string("t") + std::to_string(::getpid()) + "_" + tag;
}

/// A pid that is guaranteed dead: fork a child that exits immediately
/// and reap it. (Pid reuse within a test's lifetime is not a realistic
/// hazard.) Call only before the test creates threads.
std::uint32_t dead_pid() {
  const pid_t child = ::fork();
  if (child == 0) ::_exit(0);
  int status = 0;
  ::waitpid(child, &status, 0);
  return static_cast<std::uint32_t>(child);
}

// -- ring: basics --------------------------------------------------------

TEST(ShmRing, PushPopRoundTripsInFifoOrder) {
  RingBlock block(ShmRing::bytes_required(8, 128));
  ShmRing ring = ShmRing::init(block.data, 8, 128);
  ASSERT_TRUE(ring.try_push("pre-", "fix", 1));
  ASSERT_TRUE(ring.try_push("", "second", 1));
  std::string out;
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_EQ(out, "pre-fix");
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_EQ(out, "second");
  EXPECT_EQ(ring.try_pop(out), ShmRing::Pop::kEmpty);
}

TEST(ShmRing, FullRingRejectsWithoutBlocking) {
  RingBlock block(ShmRing::bytes_required(4, 64));
  ShmRing ring = ShmRing::init(block.data, 4, 64);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push("", std::to_string(i), 1));
  }
  EXPECT_FALSE(ring.try_push("", "overflow", 1));
  std::string out;
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_TRUE(ring.try_push("", "now-fits", 1));
}

TEST(ShmRing, WrapsAroundManyLaps) {
  RingBlock block(ShmRing::bytes_required(4, 64));
  ShmRing ring = ShmRing::init(block.data, 4, 64);
  std::string out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push("", std::to_string(i), 1));
    ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
    ASSERT_EQ(out, std::to_string(i));
  }
}

TEST(ShmRing, OversizeFrameThrows) {
  RingBlock block(ShmRing::bytes_required(4, 64));
  ShmRing ring = ShmRing::init(block.data, 4, 64);
  EXPECT_THROW((void)ring.try_push("", std::string(65, 'x'), 1),
               util::InvalidArgument);
  EXPECT_THROW((void)ring.try_push(std::string(40, 'p'),
                                   std::string(40, 'b'), 1),
               util::InvalidArgument);
  // The boundary frame fits exactly.
  EXPECT_TRUE(ring.try_push("", std::string(64, 'x'), 1));
}

TEST(ShmRing, ViewSeesFramesPushedThroughAnotherView) {
  RingBlock block(ShmRing::bytes_required(8, 128));
  ShmRing producer = ShmRing::init(block.data, 8, 128);
  ShmRing consumer = ShmRing::view(block.data);
  ASSERT_TRUE(producer.try_push("", "cross-view", 7));
  std::string out;
  ASSERT_EQ(consumer.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_EQ(out, "cross-view");
  EXPECT_EQ(consumer.slots(), 8u);
  EXPECT_EQ(consumer.frame_bytes(), 128u);
}

// -- ring: concurrency (the TSan tier's main subject) --------------------

TEST(ShmRing, ManyProducersOneConsumerDeliverEveryFrameExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  RingBlock block(ShmRing::bytes_required(16, 64));
  ShmRing ring = ShmRing::init(block.data, 16, 64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      ShmRing view = ring;  // each thread its own (cheap) view
      for (int i = 0; i < kPerProducer; ++i) {
        const std::string frame =
            std::to_string(p) + ":" + std::to_string(i);
        while (!view.try_push("", frame, static_cast<std::uint32_t>(p + 1))) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::set<std::string> seen;
  std::string out;
  int last_per_producer[kProducers] = {-1, -1, -1, -1};
  while (seen.size() < kProducers * kPerProducer) {
    if (ring.try_pop(out) != ShmRing::Pop::kFrame) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_TRUE(seen.insert(out).second) << "duplicate frame " << out;
    // Per-producer FIFO: a producer's frames arrive in push order.
    const int p = std::stoi(out.substr(0, out.find(':')));
    const int i = std::stoi(out.substr(out.find(':') + 1));
    ASSERT_GT(i, last_per_producer[p]);
    last_per_producer[p] = i;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.try_pop(out), ShmRing::Pop::kEmpty);
}

// -- ring: crash reclamation ---------------------------------------------

TEST(ShmRing, TornPushByDeadClaimantIsTombstonedAndSkipped) {
  const std::uint32_t corpse = dead_pid();
  RingBlock block(ShmRing::bytes_required(8, 64));
  ShmRing ring = ShmRing::init(block.data, 8, 64);

  // A frame ahead of the tear, then the tear, then a frame behind it:
  // the consumer must drain the first, stall, and resume after the
  // tombstone.
  ASSERT_TRUE(ring.try_push("", "before", 1));
  const std::uint64_t torn = ring.simulate_torn_push(corpse);
  ASSERT_TRUE(ring.try_push("", "after", 1));

  std::string out;
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_EQ(out, "before");
  // Wedged: the committed "after" frame is unreachable behind the tear.
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kEmpty);

  const auto stalled = ring.stalled_claim();
  ASSERT_TRUE(stalled.has_value());
  EXPECT_EQ(stalled->position, torn);
  EXPECT_EQ(stalled->claimant, corpse);

  ASSERT_TRUE(ring.tombstone_stalled(stalled->position));
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kTombstone);
  ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  EXPECT_EQ(out, "after");
  // The ring keeps working across the reclaimed slot's next laps.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(ring.try_push("", "lap", 1));
    ASSERT_EQ(ring.try_pop(out), ShmRing::Pop::kFrame);
  }
}

TEST(ShmRing, TornPushInsideClaimWindowIsUnattributable) {
  RingBlock block(ShmRing::bytes_required(8, 64));
  ShmRing ring = ShmRing::init(block.data, 8, 64);
  const std::uint64_t torn = ring.simulate_torn_push(0);
  const auto stalled = ring.stalled_claim();
  ASSERT_TRUE(stalled.has_value());
  EXPECT_EQ(stalled->position, torn);
  EXPECT_EQ(stalled->claimant, 0u);  // caller must apply the grace timeout
  ASSERT_TRUE(ring.tombstone_stalled(torn));
  std::string out;
  EXPECT_EQ(ring.try_pop(out), ShmRing::Pop::kTombstone);
}

TEST(ShmRing, HealthyRingReportsNoStalledClaim) {
  RingBlock block(ShmRing::bytes_required(8, 64));
  ShmRing ring = ShmRing::init(block.data, 8, 64);
  EXPECT_FALSE(ring.stalled_claim().has_value());  // empty
  ASSERT_TRUE(ring.try_push("", "committed", 1));
  EXPECT_FALSE(ring.stalled_claim().has_value());  // committed, not torn
  // tombstone_stalled refuses a position that was committed meanwhile.
  EXPECT_FALSE(ring.tombstone_stalled(0));
}

// -- segment lifecycle ---------------------------------------------------

TEST(ShmTransport, ClientRefusesMissingSegment) {
  try {
    ShmClient client(unique_name("nosuch"));
    FAIL() << "attach to a missing segment must throw";
  } catch (const ShmError& e) {
    EXPECT_NE(e.reason().find("no such segment"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("/dev/shm/"), std::string::npos);
  }
}

TEST(ShmTransport, VersionMismatchIsRefusedWithPathAndReason) {
  const std::string name = unique_name("vers");
  const std::string oname = "/ayd_" + name;

  // Hand-craft a segment whose header matches everything except the
  // format version (the mixed-build-fleet scenario). Field offsets
  // mirror SegmentHeader in shm_transport.cpp.
  const int fd = ::shm_open(oname.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  constexpr std::size_t kSize = 4096;
  ASSERT_EQ(::ftruncate(fd, kSize), 0);
  void* base =
      ::mmap(nullptr, kSize, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  auto* bytes = static_cast<char*>(base);
  std::memcpy(bytes, "AYDSHM01", 8);                     // magic
  const std::uint32_t bogus_version = 999;
  std::memcpy(bytes + 8, &bogus_version, 4);             // version
  const std::uint64_t total = kSize;
  std::memcpy(bytes + 16, &total, 8);                    // total_bytes
  ::munmap(base, kSize);
  ::close(fd);

  const auto expect_version_refusal = [&](auto&& construct) {
    try {
      construct();
      FAIL() << "version mismatch must refuse";
    } catch (const ShmError& e) {
      EXPECT_EQ(e.path(), ShmServer::segment_path(name));
      EXPECT_NE(e.reason().find("version 999"), std::string::npos)
          << e.reason();
    }
  };
  PlanningService service({/*threads=*/1});
  expect_version_refusal([&] { ShmServer server(name, service); });
  expect_version_refusal([&] { ShmClient client(name); });
  ::shm_unlink(oname.c_str());
}

TEST(ShmTransport, BadMagicIsRefused) {
  const std::string name = unique_name("magic");
  const std::string oname = "/ayd_" + name;
  const int fd = ::shm_open(oname.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);  // zero-filled: no magic
  ::close(fd);
  try {
    ShmClient client(name);
    FAIL() << "bad magic must refuse";
  } catch (const ShmError& e) {
    EXPECT_NE(e.reason().find("bad magic"), std::string::npos) << e.what();
  }
  ::shm_unlink(oname.c_str());
}

TEST(ShmTransport, ServerUnlinksSegmentOnShutdown) {
  const std::string name = unique_name("unlink");
  PlanningService service({/*threads=*/1});
  {
    ShmServer server(name, service);
    struct ::stat st {};
    EXPECT_EQ(::stat(ShmServer::segment_path(name).c_str(), &st), 0)
        << "segment must exist while serving";
  }
  struct ::stat st {};
  EXPECT_NE(::stat(ShmServer::segment_path(name).c_str(), &st), 0)
      << "segment must be unlinked after shutdown";
}

TEST(ShmTransport, SecondServerOnLiveSegmentIsRefused) {
  const std::string name = unique_name("live");
  PlanningService service({/*threads=*/1});
  ShmServer server(name, service);
  try {
    ShmServer second(name, service);
    FAIL() << "double-serve must refuse";
  } catch (const ShmError& e) {
    EXPECT_NE(e.reason().find("already served by live pid"),
              std::string::npos)
        << e.reason();
  }
}

// -- end to end (in process) ---------------------------------------------

TEST(ShmTransport, WarmHitRepliesAreByteIdenticalToPipeTransport) {
  const std::string name = unique_name("e2e");
  PlanningService service({/*threads=*/2});
  ShmServer server(name, service);
  ShmClient client(name);

  const std::vector<std::string> requests = {
      R"({"op":"plan","id":1,"platform":"hera","work":1e18})",
      R"({"op":"plan","id":"two","platform":"atlas","work":2e18})",
      R"({"op":"optimize","id":3,"platform":"hera"})",
  };
  for (const std::string& line : requests) {
    // handle_line IS the pipe transport's reply (serve() writes its
    // output verbatim); the shm round trip must match byte for byte —
    // cold and warm.
    const std::string cold = client.call(line);
    const std::string warm = client.call(line);
    EXPECT_EQ(cold, service.handle_line(line)) << line;
    EXPECT_EQ(warm, cold) << line;
  }
  EXPECT_GE(server.stats().requests, 2 * requests.size());
  EXPECT_FALSE(server.stats().recovered_stale);
}

TEST(ShmTransport, ConcurrentClientsShareOneCache) {
  const std::string name = unique_name("multi");
  PlanningService service({/*threads=*/2});
  ShmServer server(name, service);

  constexpr int kClients = 3;
  constexpr int kCalls = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ShmClient client(name);
      for (int i = 0; i < kCalls; ++i) {
        const int scenario = (c * kCalls + i) % 5;
        const std::string line =
            R"({"op":"plan","id":)" + std::to_string(c * 1000 + i) +
            R"(,"platform":"hera","work":)" +
            std::to_string(1 + scenario) + "e17}";
        const std::string reply = client.call(line);
        if (reply != service.handle_line(line)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // 5 distinct scenarios across 120 shm calls (plus the comparison
  // handle_line calls): the cache must have collapsed nearly all work.
  EXPECT_GE(service.cache_stats().hits, 100u);
}

TEST(ShmTransport, OversizeRequestThrowsAndOversizeReplyDegrades) {
  const std::string name = unique_name("size");
  PlanningService service({/*threads=*/1});
  ShmOptions options;
  options.frame_bytes = 512;  // an optimize record (~560 bytes) won't fit
  ShmServer server(name, service, options);
  ShmClient client(name);

  // Requests larger than a frame are the caller's error, locally.
  EXPECT_THROW((void)client.call(std::string(1000, 'x')),
               util::InvalidArgument);

  // Replies larger than a frame degrade to an error envelope that still
  // carries the request's id.
  const std::string reply =
      client.call(R"({"op":"optimize","id":77,"platform":"hera"})");
  EXPECT_NE(reply.find("\"id\":77"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
  EXPECT_NE(reply.find("exceeds the shm frame capacity"), std::string::npos)
      << reply;
  // A small reply on the same session still round-trips normally.
  const std::string stats = client.call(R"({"op":"stats","id":78})");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
}

TEST(ShmTransport, ClientFailsFastAfterServerStops) {
  const std::string name = unique_name("stopped");
  PlanningService service({/*threads=*/1});
  auto server = std::make_unique<ShmServer>(name, service);
  ShmClient client(name);
  ASSERT_NE(client.call(R"({"op":"stats","id":1})").find("\"ok\":true"),
            std::string::npos);
  server->stop();
  try {
    (void)client.call(R"({"op":"stats","id":2})", /*timeout_ms=*/2000);
    FAIL() << "a call after shutdown must throw";
  } catch (const ShmError& e) {
    EXPECT_NE(e.reason().find("shut down"), std::string::npos)
        << e.reason();
  }
}

TEST(ShmTransport, AttachRefusedWhenClientTableIsFull) {
  const std::string name = unique_name("slots");
  PlanningService service({/*threads=*/1});
  ShmOptions options;
  options.max_clients = 2;
  ShmServer server(name, service, options);
  ShmClient a(name);
  ShmClient b(name);
  try {
    ShmClient c(name);
    FAIL() << "third attach with max_clients=2 must refuse";
  } catch (const ShmError& e) {
    EXPECT_NE(e.reason().find("client slots"), std::string::npos)
        << e.reason();
  }
}

TEST(ShmTransport, DetachFreesTheClientSlot) {
  const std::string name = unique_name("detach");
  PlanningService service({/*threads=*/1});
  ShmOptions options;
  options.max_clients = 1;
  ShmServer server(name, service, options);
  {
    ShmClient only(name);
    ASSERT_NE(only.call(R"({"op":"stats","id":1})").find("\"ok\":true"),
              std::string::npos);
  }
  // The destructor released the single slot; a fresh attach succeeds
  // and round-trips.
  ShmClient next(name);
  EXPECT_NE(next.call(R"({"op":"stats","id":2})").find("\"ok\":true"),
            std::string::npos);
}

// -- ShmBackoff: the capped exponential wait schedule --------------------
//
// Every ring wait (transport loop, delivery, client reply wait) runs this
// schedule: a hot spin phase for warm-path latency, a yield phase, then
// exponential sleeps so an idle endpoint stops burning a core. The
// schedule function is pure and constexpr — pin it exactly.

static_assert(ShmBackoff::kSpinPauses < ShmBackoff::kYieldPauses,
              "spin phase precedes the yield phase");
static_assert(ShmBackoff::sleep_for_pause(0).count() == 0);
static_assert(
    ShmBackoff::sleep_for_pause(ShmBackoff::kYieldPauses - 1).count() == 0);
static_assert(ShmBackoff::sleep_for_pause(ShmBackoff::kYieldPauses) ==
              ShmBackoff::kSleepFloor);

TEST(ShmBackoff, ScheduleSpinsThenYieldsThenSleepsExponentially) {
  using std::chrono::microseconds;
  // Spin + yield phases never sleep: warm-hit latency is untouched.
  for (const unsigned p : {0u, 1u, ShmBackoff::kSpinPauses,
                           ShmBackoff::kYieldPauses - 1}) {
    EXPECT_EQ(ShmBackoff::sleep_for_pause(p), microseconds{0}) << p;
  }
  // Then 50 us doubling per pause: 50, 100, 200, 400, 800, 1600, 2000.
  const unsigned base = ShmBackoff::kYieldPauses;
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 0), microseconds{50});
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 1), microseconds{100});
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 2), microseconds{200});
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 3), microseconds{400});
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 4), microseconds{800});
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 5), microseconds{1600});
  // The cap is the idle steady-state poll interval; it never grows past
  // kSleepCap no matter how long the wait.
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 6), ShmBackoff::kSleepCap);
  EXPECT_EQ(ShmBackoff::sleep_for_pause(base + 7), ShmBackoff::kSleepCap);
  EXPECT_EQ(ShmBackoff::sleep_for_pause(1u << 20), ShmBackoff::kSleepCap);
  EXPECT_EQ(ShmBackoff::sleep_for_pause(
                std::numeric_limits<unsigned>::max()),
            ShmBackoff::kSleepCap);
}

TEST(ShmBackoff, ResetRearmsTheHotSpinPhase) {
  // After a frame arrives the waiter resets; the next wait must start
  // from the spin phase again (the latency path), not from the 2 ms
  // steady state. pause() itself must also survive saturation.
  ShmBackoff backoff;
  for (int i = 0; i < 600; ++i) backoff.pause();
  backoff.reset();
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < ShmBackoff::kSpinPauses; ++i) backoff.pause();
  const auto spin_elapsed = std::chrono::steady_clock::now() - t0;
  // A re-armed spin phase is pure busy work: far under one sleep quantum.
  EXPECT_LT(spin_elapsed, std::chrono::milliseconds(40));
}

TEST(ShmBackoff, IdleWaitSleepsInsteadOfBurningTheCore) {
  // Drive one backoff well into the sleep phase and compare thread CPU
  // time against wall time: an idle waiter must spend the overwhelming
  // majority of the wait descheduled. (The old fixed-sleep wait passed
  // this too — the regression this pins is any return to pure spinning.)
  ShmBackoff backoff;
  timespec cpu0{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu0);
  const auto w0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 560; ++i) backoff.pause();  // ~90 ms of schedule
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
          .count();
  timespec cpu1{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &cpu1);
  const double cpu = static_cast<double>(cpu1.tv_sec - cpu0.tv_sec) +
                     1e-9 * static_cast<double>(cpu1.tv_nsec - cpu0.tv_nsec);
  if (wall < 0.02) {
    GTEST_SKIP() << "sleeps did not materialise (loaded CI machine)";
  }
  EXPECT_LT(cpu, 0.5 * wall) << "cpu=" << cpu << "s wall=" << wall << "s";
}

}  // namespace
}  // namespace ayd::service
