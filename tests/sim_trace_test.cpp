#include "ayd/sim/trace.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "ayd/util/error.hpp"

namespace ayd::sim {
namespace {

TEST(Trace, AccumulatesSegmentsInOrder) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  t.add(10.0, 12.0, SegmentKind::kVerify);
  t.add(12.0, 15.0, SegmentKind::kCheckpoint);
  EXPECT_EQ(t.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(t.total_time(), 15.0);
}

TEST(Trace, TimeInKind) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  t.add(10.0, 11.0, SegmentKind::kDowntime);
  t.add(11.0, 13.0, SegmentKind::kRecovery);
  t.add(13.0, 23.0, SegmentKind::kCompute);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kCompute), 20.0);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kRecovery), 2.0);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kVerify), 0.0);
}

TEST(Trace, ZeroLengthSegmentsIgnored) {
  Trace t;
  t.add(5.0, 5.0, SegmentKind::kVerify);
  EXPECT_TRUE(t.empty());
}

TEST(Trace, RejectsOutOfOrderAppends) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  EXPECT_THROW(t.add(5.0, 8.0, SegmentKind::kVerify),
               util::InvalidArgument);
  EXPECT_THROW(t.add(20.0, 15.0, SegmentKind::kVerify),
               util::InvalidArgument);
}

TEST(Trace, RenderContainsGlyphsAndLegend) {
  Trace t;
  t.add(0.0, 50.0, SegmentKind::kCompute);
  t.add(50.0, 60.0, SegmentKind::kCheckpoint);
  const std::string out = t.render_timeline(50);
  EXPECT_NE(out.find('='), std::string::npos);
  EXPECT_NE(out.find('C'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("checkpoint"), std::string::npos);
}

TEST(Trace, RenderEmptyTrace) {
  const Trace t;
  EXPECT_NE(t.render_timeline().find("empty"), std::string::npos);
}

TEST(Trace, RenderPicksDominantKindPerBucket) {
  Trace t;
  // 90% compute, 10% downtime: with 10 buckets, exactly one D bucket.
  t.add(0.0, 90.0, SegmentKind::kCompute);
  t.add(90.0, 100.0, SegmentKind::kDowntime);
  const std::string line = t.render_timeline(10);
  const std::size_t d_count =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), 'D'));
  EXPECT_GE(d_count, 1u);  // at least the downtime bucket (+1 in legend)
  EXPECT_LE(d_count, 2u);
}

// -- FailureLogReader: the streaming telemetry parser --------------------
//
// `ayd watch` and the service's subscribe op feed one line at a time;
// every malformed-input path must throw a typed error carrying the row
// number and leave the reader usable for the next line (a live feed must
// not wedge on one bad row).

std::vector<double> feed_all(FailureLogReader& reader,
                             const std::vector<std::string>& lines) {
  std::vector<double> gaps;
  for (const std::string& line : lines) {
    if (const auto gap = reader.feed(line)) gaps.push_back(*gap);
  }
  return gaps;
}

TEST(FailureLogReader, GapModeStreamsValuesThroughHeaderAndBlanks) {
  FailureLogReader reader;
  const std::vector<double> gaps =
      feed_all(reader, {"gap_seconds", "3600", "", "  ", "1800.5,ignored",
                        "7200"});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 3600.0);
  EXPECT_DOUBLE_EQ(gaps[1], 1800.5);  // only the first CSV field counts
  EXPECT_DOUBLE_EQ(gaps[2], 7200.0);
  EXPECT_EQ(reader.lines(), 6u);
}

TEST(FailureLogReader, AbsoluteModeDifferencesTimestamps) {
  FailureLogReader reader;
  const std::vector<double> gaps =
      feed_all(reader, {"failure_time", "100", "350", "350", "1000"});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 250.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);  // simultaneous records are legal
  EXPECT_DOUBLE_EQ(gaps[2], 650.0);
}

TEST(FailureLogReader, NonMonotoneTimestampsThrowWithRowNumber) {
  FailureLogReader reader;
  (void)reader.feed("failure_time");
  (void)reader.feed("100");
  (void)reader.feed("250");
  try {
    (void)reader.feed("200");
    FAIL() << "expected util::InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("non-decreasing"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("row 4"), std::string::npos);
  }
}

TEST(FailureLogReader, MalformedValuesThrowAndNameTheRow) {
  // Truncated numbers, non-numeric junk, NaN/inf spellings, negative
  // times, and out-of-range literals all take the same typed-error path.
  for (const std::string& bad :
       {std::string("12.5e"), std::string("bogus"), std::string("nan"),
        std::string("inf"), std::string("-30"), std::string("1e999"),
        std::string("3600 junk")}) {
    FailureLogReader reader;
    (void)reader.feed("gap_seconds");
    try {
      (void)reader.feed(bad);
      FAIL() << "expected util::InvalidArgument for \"" << bad << "\"";
    } catch (const util::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos)
          << bad;
      EXPECT_NE(std::string(e.what()).find("bad time value"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(FailureLogReader, StaysUsableAfterAThrow) {
  FailureLogReader reader;
  (void)reader.feed("gap_seconds");
  EXPECT_THROW((void)reader.feed("bogus"), util::InvalidArgument);
  const auto gap = reader.feed("3600");
  ASSERT_TRUE(gap.has_value());
  EXPECT_DOUBLE_EQ(*gap, 3600.0);
  EXPECT_EQ(reader.lines(), 3u);  // the bad row still counted
}

TEST(FailureLogReader, HeaderlessStreamsParseFromTheFirstLine) {
  FailureLogReader reader;
  const std::vector<double> gaps = feed_all(reader, {"42", "58"});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 42.0);
  EXPECT_DOUBLE_EQ(gaps[1], 58.0);
}

TEST(SegmentKind, NamesAndGlyphsDistinct) {
  std::set<char> glyphs;
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(SegmentKind::kDowntime); ++k) {
    const auto kind = static_cast<SegmentKind>(k);
    glyphs.insert(segment_kind_glyph(kind));
    names.insert(segment_kind_name(kind));
  }
  EXPECT_EQ(glyphs.size(), 6u);
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace ayd::sim
