#include "ayd/sim/trace.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::sim {
namespace {

TEST(Trace, AccumulatesSegmentsInOrder) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  t.add(10.0, 12.0, SegmentKind::kVerify);
  t.add(12.0, 15.0, SegmentKind::kCheckpoint);
  EXPECT_EQ(t.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(t.total_time(), 15.0);
}

TEST(Trace, TimeInKind) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  t.add(10.0, 11.0, SegmentKind::kDowntime);
  t.add(11.0, 13.0, SegmentKind::kRecovery);
  t.add(13.0, 23.0, SegmentKind::kCompute);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kCompute), 20.0);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kRecovery), 2.0);
  EXPECT_DOUBLE_EQ(t.time_in(SegmentKind::kVerify), 0.0);
}

TEST(Trace, ZeroLengthSegmentsIgnored) {
  Trace t;
  t.add(5.0, 5.0, SegmentKind::kVerify);
  EXPECT_TRUE(t.empty());
}

TEST(Trace, RejectsOutOfOrderAppends) {
  Trace t;
  t.add(0.0, 10.0, SegmentKind::kCompute);
  EXPECT_THROW(t.add(5.0, 8.0, SegmentKind::kVerify),
               util::InvalidArgument);
  EXPECT_THROW(t.add(20.0, 15.0, SegmentKind::kVerify),
               util::InvalidArgument);
}

TEST(Trace, RenderContainsGlyphsAndLegend) {
  Trace t;
  t.add(0.0, 50.0, SegmentKind::kCompute);
  t.add(50.0, 60.0, SegmentKind::kCheckpoint);
  const std::string out = t.render_timeline(50);
  EXPECT_NE(out.find('='), std::string::npos);
  EXPECT_NE(out.find('C'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("checkpoint"), std::string::npos);
}

TEST(Trace, RenderEmptyTrace) {
  const Trace t;
  EXPECT_NE(t.render_timeline().find("empty"), std::string::npos);
}

TEST(Trace, RenderPicksDominantKindPerBucket) {
  Trace t;
  // 90% compute, 10% downtime: with 10 buckets, exactly one D bucket.
  t.add(0.0, 90.0, SegmentKind::kCompute);
  t.add(90.0, 100.0, SegmentKind::kDowntime);
  const std::string line = t.render_timeline(10);
  const std::size_t d_count =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), 'D'));
  EXPECT_GE(d_count, 1u);  // at least the downtime bucket (+1 in legend)
  EXPECT_LE(d_count, 2u);
}

TEST(SegmentKind, NamesAndGlyphsDistinct) {
  std::set<char> glyphs;
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(SegmentKind::kDowntime); ++k) {
    const auto kind = static_cast<SegmentKind>(k);
    glyphs.insert(segment_kind_glyph(kind));
    names.insert(segment_kind_name(kind));
  }
  EXPECT_EQ(glyphs.size(), 6u);
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace ayd::sim
