#include "ayd/core/first_order.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::core {
namespace {

using model::Scenario;
using model::System;

TEST(Theorem1, PeriodFormula) {
  // T*_P = sqrt((V+C)/(λf/2 + λs)); hand-evaluate on Hera scenario 3.
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const double p = 512.0;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double expected = std::sqrt((300.0 + 15.4) / (lf / 2.0 + ls));
  EXPECT_NEAR(optimal_period_first_order(sys, p), expected, 1e-9 * expected);
}

TEST(Theorem1, StationaryPointOfFirstOrderOverhead) {
  const System sys = System::from_platform(model::atlas(), Scenario::kS1);
  const double p = 1024.0;
  const double t_star = optimal_period_first_order(sys, p);
  const double h_star = first_order_overhead(sys, {t_star, p});
  for (const double factor : {0.5, 0.9, 1.1, 2.0}) {
    EXPECT_GT(first_order_overhead(sys, {t_star * factor, p}), h_star)
        << "factor=" << factor;
  }
}

TEST(Theorem1, MatchesNumericalOptimumOfExactOverhead) {
  // The first-order period drops O(λ²) terms and the downtime, so at
  // realistic platform scales it lands within a few percent of the exact
  // numerical optimum; the paper's own accuracy claim (Figure 3(c)) is
  // that the *achieved overhead* differs by less than 0.2%.
  for (const auto& platform : model::all_platforms()) {
    const System sys = System::from_platform(platform, Scenario::kS3);
    const double p = platform.measured_procs;
    const double t_fo = optimal_period_first_order(sys, p);
    const PeriodOptimum num = optimal_period(sys, p);
    EXPECT_NEAR(t_fo, num.period, 0.10 * num.period) << platform.name;
    // Overheads agree much tighter (flat objective near the optimum).
    EXPECT_NEAR(pattern_overhead(sys, {t_fo, p}), num.overhead,
                2e-3 * num.overhead)
        << platform.name;
  }
}

TEST(Theorem1, OverheadFormulaEquation8) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const double p = 512.0;
  const double lf = sys.fail_stop_rate(p);
  const double ls = sys.silent_rate(p);
  const double expected =
      sys.error_free_overhead(p) *
      (1.0 + 2.0 * std::sqrt((lf / 2.0 + ls) * (300.0 + 15.4)));
  EXPECT_NEAR(optimal_overhead_fixed_procs(sys, p), expected,
              1e-12 * expected);
}

TEST(Theorem1, ErrorFreePlatformNeverCheckpoints) {
  const System sys(model::FailureModel::error_free(),
                   model::resolve(model::hera(), Scenario::kS3), 3600.0,
                   model::Speedup::amdahl(0.1));
  EXPECT_TRUE(std::isinf(optimal_period_first_order(sys, 512.0)));
}

TEST(Theorem2, ClosedFormOnHeraScenario1) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  const FirstOrderSolution sol = solve_first_order(sys);
  ASSERT_TRUE(sol.has_optimum);
  EXPECT_EQ(sol.analysis_case, model::FirstOrderCase::kLinearCheckpoint);

  const double c = 300.0 / 512.0;
  const double wl = sys.failure().weighted_lambda();
  const double alpha = 0.1;
  EXPECT_NEAR(sol.procs,
              std::pow(1.0 / (c * wl), 0.25) *
                  std::sqrt((1.0 - alpha) / (2.0 * alpha)),
              1e-9 * sol.procs);
  EXPECT_NEAR(sol.period, std::sqrt(c / wl), 1e-9 * sol.period);
  EXPECT_NEAR(sol.overhead,
              alpha + 2.0 * std::pow(4.0 * alpha * alpha * (1.0 - alpha) *
                                         (1.0 - alpha) * c * wl,
                                     0.25),
              1e-12);
}

TEST(Theorem2, PeriodIndependentOfAlpha) {
  // In case 1 the optimal period depends only on c and the rates — not on
  // the sequential fraction (visible in Figure 4(b), scenario 1).
  const System a = System::from_platform(model::hera(), Scenario::kS1, 0.1);
  const System b =
      System::from_platform(model::hera(), Scenario::kS1, 0.001);
  EXPECT_DOUBLE_EQ(solve_first_order(a).period, solve_first_order(b).period);
}

TEST(Theorem3, ClosedFormOnCoastalScenario3) {
  const System sys = System::from_platform(model::coastal(), Scenario::kS3);
  const FirstOrderSolution sol = solve_first_order(sys);
  ASSERT_TRUE(sol.has_optimum);
  EXPECT_EQ(sol.analysis_case, model::FirstOrderCase::kConstantCost);

  const double d = 1051.0 + 4.5;
  const double wl = sys.failure().weighted_lambda();
  const double alpha = 0.1;
  EXPECT_NEAR(sol.procs,
              std::pow(1.0 / (d * wl), 1.0 / 3.0) *
                  std::pow((1.0 - alpha) / alpha, 2.0 / 3.0),
              1e-9 * sol.procs);
  EXPECT_NEAR(sol.period,
              std::pow(d * d / wl, 1.0 / 3.0) *
                  std::pow(alpha / (1.0 - alpha), 1.0 / 3.0),
              1e-9 * sol.period);
  EXPECT_NEAR(
      sol.overhead,
      alpha + 3.0 * std::pow(alpha * alpha * (1.0 - alpha) * d * wl,
                             1.0 / 3.0),
      1e-12);
}

TEST(Theorems, OverheadApproachesAlphaAsLambdaVanishes) {
  for (const Scenario s : {Scenario::kS1, Scenario::kS3}) {
    const System base = System::from_platform(model::hera(), s);
    double prev_gap = 1e9;
    for (const double lambda : {1e-8, 1e-10, 1e-12}) {
      const FirstOrderSolution sol =
          solve_first_order(base.with_lambda(lambda));
      ASSERT_TRUE(sol.has_optimum);
      const double gap = sol.overhead - 0.1;
      EXPECT_GT(gap, 0.0);
      EXPECT_LT(gap, prev_gap);
      prev_gap = gap;
    }
  }
}

TEST(Theorems, LambdaScalingExponents) {
  // P*(λ/10)/P*(λ) must equal 10^{1/4} (Thm 2) and 10^{1/3} (Thm 3);
  // T* similarly 10^{1/2} and 10^{1/3}. This is the heart of the title
  // result.
  const System s1 = System::from_platform(model::hera(), Scenario::kS1);
  const System s3 = System::from_platform(model::hera(), Scenario::kS3);

  const auto ratio = [](const System& sys, double factor) {
    const FirstOrderSolution hi =
        solve_first_order(sys.with_lambda(1e-8));
    const FirstOrderSolution lo =
        solve_first_order(sys.with_lambda(1e-8 / factor));
    return std::pair{lo.procs / hi.procs, lo.period / hi.period};
  };

  const auto [p_ratio_1, t_ratio_1] = ratio(s1, 10.0);
  EXPECT_NEAR(p_ratio_1, std::pow(10.0, 0.25), 1e-9);
  EXPECT_NEAR(t_ratio_1, std::pow(10.0, 0.5), 1e-9);

  const auto [p_ratio_3, t_ratio_3] = ratio(s3, 10.0);
  EXPECT_NEAR(p_ratio_3, std::pow(10.0, 1.0 / 3.0), 1e-9);
  EXPECT_NEAR(t_ratio_3, std::pow(10.0, 1.0 / 3.0), 1e-9);
}

TEST(Case3, NoFirstOrderOptimum) {
  const System sys = System::from_platform(model::hera(), Scenario::kS6);
  const FirstOrderSolution sol = solve_first_order(sys);
  EXPECT_FALSE(sol.has_optimum);
  EXPECT_EQ(sol.analysis_case, model::FirstOrderCase::kDecreasingCost);
  EXPECT_NE(sol.note.find("numerical"), std::string::npos);
}

TEST(Case4, PerfectlyParallelHasNoFirstOrderOptimum) {
  const System sys =
      System::from_platform(model::hera(), Scenario::kS1, /*alpha=*/0.0);
  const FirstOrderSolution sol = solve_first_order(sys);
  EXPECT_FALSE(sol.has_optimum);
  EXPECT_NE(sol.note.find("perfectly parallel"), std::string::npos);
}

TEST(SolveFirstOrder, NonAmdahlProfilesRejectedGracefully) {
  const System sys(model::hera().failure(),
                   model::resolve(model::hera(), Scenario::kS1), 3600.0,
                   model::Speedup::gustafson(0.1));
  const FirstOrderSolution sol = solve_first_order(sys);
  EXPECT_FALSE(sol.has_optimum);
  EXPECT_NE(sol.note.find("Amdahl"), std::string::npos);
}

TEST(AsymptoticOrders, TableOfExponents) {
  const auto case1 =
      asymptotic_orders(model::FirstOrderCase::kLinearCheckpoint);
  EXPECT_DOUBLE_EQ(case1.p_exponent, -0.25);
  EXPECT_DOUBLE_EQ(case1.t_exponent, -0.5);
  const auto case2 = asymptotic_orders(model::FirstOrderCase::kConstantCost);
  EXPECT_NEAR(case2.p_exponent, -1.0 / 3.0, 1e-15);
  EXPECT_NEAR(case2.t_exponent, -1.0 / 3.0, 1e-15);

  const auto a0_case1 =
      asymptotic_orders_alpha0(model::FirstOrderCase::kLinearCheckpoint);
  EXPECT_DOUBLE_EQ(a0_case1.p_exponent, -0.5);
  const auto a0_case2 =
      asymptotic_orders_alpha0(model::FirstOrderCase::kConstantCost);
  EXPECT_DOUBLE_EQ(a0_case2.p_exponent, -1.0);
  EXPECT_DOUBLE_EQ(a0_case2.t_exponent, 0.0);
}

TEST(VerificationCost, IrrelevantInCase1OptimalAllocation) {
  // Theorem 2's note: with C = cP the verification cost does not appear
  // in P* or T*. Doubling V must not change the closed form.
  const model::Platform base = model::hera();
  model::Platform doubled = base;
  doubled.measured_verification *= 2.0;
  const FirstOrderSolution a =
      solve_first_order(System::from_platform(base, Scenario::kS1));
  const FirstOrderSolution b =
      solve_first_order(System::from_platform(doubled, Scenario::kS1));
  EXPECT_DOUBLE_EQ(a.procs, b.procs);
  EXPECT_DOUBLE_EQ(a.period, b.period);
}

}  // namespace
}  // namespace ayd::core
