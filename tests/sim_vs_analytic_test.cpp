// The paper's central validation, inverted into a test: the simulator's
// mean pattern time and overhead must match Proposition 1 within
// statistical error, and the two simulator back-ends must agree with each
// other.

#include <cmath>
#include <gtest/gtest.h>
#include <tuple>

#include "ayd/core/expected_time.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd::sim {
namespace {

using core::Pattern;
using model::Scenario;
using model::System;

/// z-score of the simulated mean against the analytic expectation.
double z_score(const stats::Summary& s, double expected) {
  return (s.mean - expected) / std::max(s.stderr_mean, 1e-300);
}

class SimMatchesProp1
    : public ::testing::TestWithParam<std::tuple<int, Scenario>> {};

TEST_P(SimMatchesProp1, MeanPatternTimeWithinFiveSigma) {
  const model::Platform platform =
      model::all_platforms()[static_cast<std::size_t>(
          std::get<0>(GetParam()))];
  const Scenario scenario = std::get<1>(GetParam());
  const System sys = System::from_platform(platform, scenario);
  // Theorem-1 period at the measured processor count: a realistic
  // operating point where errors actually strike.
  const double p = platform.measured_procs;
  const Pattern pattern{core::optimal_period_first_order(sys, p), p};

  ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 80;
  opt.seed = 0xFEED + static_cast<std::uint64_t>(scenario);
  const ReplicationResult r = simulate_overhead(sys, pattern, opt);

  EXPECT_LT(std::abs(z_score(r.pattern_time, r.analytic_pattern_time)), 5.0)
      << platform.name << " scenario " << model::scenario_name(scenario)
      << ": simulated " << r.pattern_time.mean << " vs analytic "
      << r.analytic_pattern_time;
  EXPECT_LT(std::abs(z_score(r.overhead, r.analytic_overhead)), 5.0)
      << platform.name << " scenario " << model::scenario_name(scenario);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatformsAllScenarios, SimMatchesProp1,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::ValuesIn(model::all_scenarios())));

TEST(SimMatchesProp1Des, EngineBackendAgreesWithFormula) {
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const Pattern pattern{core::optimal_period_first_order(sys, 512.0), 512.0};
  ReplicationOptions opt;
  opt.replicas = 40;
  opt.patterns_per_replica = 60;
  opt.backend = Backend::kDes;
  const ReplicationResult r = simulate_overhead(sys, pattern, opt);
  EXPECT_LT(std::abs(z_score(r.pattern_time, r.analytic_pattern_time)), 5.0);
}

TEST(Backends, FastAndDesAgreeStatistically) {
  // Same system, independent seeds: the two means must agree within the
  // combined standard error.
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  const Pattern pattern{core::optimal_period_first_order(sys, 512.0), 512.0};
  ReplicationOptions fast_opt, des_opt;
  fast_opt.replicas = des_opt.replicas = 50;
  fast_opt.patterns_per_replica = des_opt.patterns_per_replica = 60;
  fast_opt.seed = 101;
  des_opt.seed = 202;
  des_opt.backend = Backend::kDes;
  const ReplicationResult fast = simulate_overhead(sys, pattern, fast_opt);
  const ReplicationResult des = simulate_overhead(sys, pattern, des_opt);
  const double combined_se =
      std::sqrt(fast.overhead.stderr_mean * fast.overhead.stderr_mean +
                des.overhead.stderr_mean * des.overhead.stderr_mean);
  EXPECT_LT(std::abs(fast.overhead.mean - des.overhead.mean),
            5.0 * combined_se);
}

TEST(HighErrorRegime, FormulaStillMatchesSimulation) {
  // Crank λ up so that nearly every pattern suffers errors: Prop. 1 is
  // exact (not first-order), so the agreement must survive.
  const System sys =
      System::from_platform(model::hera(), Scenario::kS3).with_lambda(3e-7);
  const Pattern pattern{5000.0, 2048.0};
  ReplicationOptions opt;
  opt.replicas = 80;
  opt.patterns_per_replica = 50;
  const ReplicationResult r = simulate_overhead(sys, pattern, opt);
  EXPECT_GT(r.fail_stops_per_pattern + r.silent_detections_per_pattern, 0.5);
  EXPECT_LT(std::abs(z_score(r.pattern_time, r.analytic_pattern_time)), 5.0)
      << "simulated " << r.pattern_time.mean << " analytic "
      << r.analytic_pattern_time;
}

TEST(ErrorTelemetry, RatesMatchPoissonExpectations) {
  // With rate λs and per-attempt exposure T, silent errors strike an
  // attempt with probability 1 − e^{−λs·T}; masked + detected counts per
  // attempt must land close to that.
  const System sys = System::from_platform(model::atlas(), Scenario::kS3);
  const double p = 1024.0;
  const double t = 20000.0;
  ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 60;
  const ReplicationResult r = simulate_overhead(sys, {t, p}, opt);
  const double q_silent = -std::expm1(-sys.silent_rate(p) * t);
  const double struck_per_attempt =
      (r.silent_detections_per_pattern + r.masked_silent_per_pattern) /
      r.attempts_per_pattern;
  EXPECT_NEAR(struck_per_attempt, q_silent, 0.15 * q_silent + 0.002);
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  const System sys = System::from_platform(model::coastal(), Scenario::kS5);
  const Pattern pattern{core::optimal_period_first_order(sys, 2048.0),
                        2048.0};
  ReplicationOptions opt;
  opt.replicas = 16;
  opt.patterns_per_replica = 20;
  exec::ThreadPool one(1);
  exec::ThreadPool four(4);
  const ReplicationResult serial = simulate_overhead(sys, pattern, opt);
  const ReplicationResult p1 = simulate_overhead(sys, pattern, opt, &one);
  const ReplicationResult p4 = simulate_overhead(sys, pattern, opt, &four);
  EXPECT_DOUBLE_EQ(serial.overhead.mean, p1.overhead.mean);
  EXPECT_DOUBLE_EQ(serial.overhead.mean, p4.overhead.mean);
  EXPECT_DOUBLE_EQ(serial.pattern_time.mean, p4.pattern_time.mean);
}

TEST(Replication, SeedChangesResults) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  const Pattern pattern{3000.0, 512.0};
  ReplicationOptions a, b;
  a.replicas = b.replicas = 10;
  a.patterns_per_replica = b.patterns_per_replica = 20;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(simulate_overhead(sys, pattern, a).overhead.mean,
            simulate_overhead(sys, pattern, b).overhead.mean);
}

TEST(Replication, OptionsValidated) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  ReplicationOptions opt;
  opt.replicas = 0;
  EXPECT_THROW((void)simulate_overhead(sys, {100.0, 2.0}, opt),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::sim
