// Statistical validation of the failure-distribution samplers (CTest
// label: "statistical"; CI runs this tier in its own job).
//
// Two sampling paths reach a FailureDistribution in production:
//  * the fast backend draws `dist->sample(rng)` directly (quantile
//    inversion), and
//  * the DES backend pushes `clock + dist->sample(rng)` arrivals into an
//    EventQueue and consumes them in pop order.
// For each distribution we KS-test 10k fixed-seed samples from both
// paths against the analytic CDF — a far stronger check than matching a
// couple of moments, and exactly the check the paper's methodology
// (replicated simulation vs analysis) rests on.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/model/failure_dist.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/event_queue.hpp"
#include "ayd/stats/ks.hpp"

namespace ayd::model {
namespace {

constexpr std::size_t kSamples = 10000;
constexpr std::uint64_t kSeed = 0xA4D2016ULL;
constexpr double kPValueFloor = 1e-3;

/// The fast-backend path: direct quantile-inversion draws.
std::vector<double> sample_fast_path(const FailureDistribution& dist,
                                     std::uint64_t stream_id) {
  rng::RngStream rng(kSeed, stream_id);
  std::vector<double> xs(kSamples);
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

/// The DES-backend path: arrivals scheduled into an EventQueue from a
/// moving clock and recovered in pop order.
std::vector<double> sample_des_path(const FailureDistribution& dist,
                                    std::uint64_t stream_id) {
  rng::RngStream rng(kSeed, stream_id);
  sim::EventQueue queue;
  double clock = 0.0;
  std::vector<double> scheduled_at;
  scheduled_at.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const double gap = dist.sample(rng);
    scheduled_at.push_back(clock);
    (void)queue.push(clock + gap, sim::EventType::kFailStop);
    clock += gap;  // renewal: the next arrival clock starts here
  }
  std::vector<double> xs;
  xs.reserve(kSamples);
  std::size_t i = 0;
  while (auto event = queue.pop()) {
    xs.push_back(event->time - scheduled_at[i++]);
  }
  EXPECT_EQ(xs.size(), kSamples);
  return xs;
}

void expect_ks_passes(const FailureDistSpec& spec, double rate) {
  const auto dist = spec.instantiate(rate);
  const auto cdf = [&](double x) { return dist->cdf(x); };

  const auto fast = sample_fast_path(*dist, 1);
  const auto fast_ks = stats::ks_test(fast, cdf);
  EXPECT_GT(fast_ks.p_value, kPValueFloor)
      << spec.to_string() << " fast path: D=" << fast_ks.statistic;

  const auto des = sample_des_path(*dist, 2);
  const auto des_ks = stats::ks_test(des, cdf);
  EXPECT_GT(des_ks.p_value, kPValueFloor)
      << spec.to_string() << " DES path: D=" << des_ks.statistic;
}

TEST(FailureDistKs, ExponentialBothPaths) {
  expect_ks_passes(FailureDistSpec::exponential(), 1e-5);
  expect_ks_passes(FailureDistSpec::exponential(), 0.25);
}

TEST(FailureDistKs, WeibullBurstyBothPaths) {
  expect_ks_passes(FailureDistSpec::weibull(0.7), 1e-5);
}

TEST(FailureDistKs, WeibullWearOutBothPaths) {
  expect_ks_passes(FailureDistSpec::weibull(1.5), 3e-4);
}

TEST(FailureDistKs, LogNormalBothPaths) {
  expect_ks_passes(FailureDistSpec::lognormal(1.2), 1e-5);
  expect_ks_passes(FailureDistSpec::lognormal(0.5), 2e-3);
}

/// The SIMD sampling path: bulk unit variates through the tier-dispatched
/// vectorized kernels, scaled by from_unit_bulk — exactly what the DES
/// refill, the variate pool, and the fast simulator's block pipeline run
/// in production under the AVX2 tier.
std::vector<double> sample_simd_path(const FailureDistribution& dist,
                                     std::uint64_t stream_id) {
  rng::RngStream rng(kSeed, stream_id);
  std::vector<double> z(kSamples), xs(kSamples);
  dist.sample_units_fast(rng, z.data(), kSamples);
  dist.from_unit_bulk(z.data(), xs.data(), kSamples);
  return xs;
}

TEST(FailureDistKs, Avx2TierSamplingPassesForEveryAnalyticKind) {
  if (!rng::simd::avx2_available()) {
    GTEST_SKIP() << "AVX2 not available on this host";
  }
  rng::simd::force_tier(rng::simd::Tier::kAvx2);
  struct Case {
    FailureDistSpec spec;
    double rate;
  };
  for (const Case& c : {Case{FailureDistSpec::exponential(), 1e-5},
                        Case{FailureDistSpec::weibull(0.7), 1e-5},
                        Case{FailureDistSpec::weibull(1.5), 3e-4},
                        Case{FailureDistSpec::lognormal(1.2), 1e-5},
                        Case{FailureDistSpec::lognormal(0.5), 2e-3}}) {
    const auto dist = c.spec.instantiate(c.rate);
    const auto cdf = [&](double x) { return dist->cdf(x); };
    const auto xs = sample_simd_path(*dist, 3);
    const auto ks = stats::ks_test(xs, cdf);
    EXPECT_GT(ks.p_value, kPValueFloor)
        << c.spec.to_string() << " SIMD path: D=" << ks.statistic;
  }
  rng::simd::clear_forced_tier();
}

TEST(FailureDistKs, TraceReplayMatchesSourceEmpiricalCdf) {
  // KS p-values assume a continuous CDF; for the discrete empirical
  // distribution we bound the sup-distance between the resampled and the
  // source CDF directly (Dvoretzky–Kiefer–Wolfowitz at ~1e-7 confidence
  // for n = 10k gives ~0.028).
  const std::vector<double> source{300.0,  960.0,   55.0,  7200.0, 1800.0,
                                   120.0,  86400.0, 600.0, 43.0,   3600.0,
                                   9000.0, 240.0};
  const auto spec = FailureDistSpec::trace_replay(source, "synthetic");
  const double rate = 1e-4;
  const auto dist = spec.instantiate(rate);

  // The distribution's support: the source gaps rescaled to the target
  // mean. Evaluate the CDFs at the midpoints *between* atoms — the DES
  // path recovers gaps as (clock + gap) - clock, whose last-ulp fuzz
  // would make comparisons exactly at an atom ambiguous.
  const double source_mean = [&] {
    double s = 0.0;
    for (const double g : source) s += g;
    return s / static_cast<double>(source.size());
  }();
  std::vector<double> atoms = source;
  for (double& a : atoms) a *= (1.0 / rate) / source_mean;
  std::sort(atoms.begin(), atoms.end());
  std::vector<double> eval_points{0.5 * atoms.front()};
  for (std::size_t i = 0; i + 1 < atoms.size(); ++i) {
    eval_points.push_back(0.5 * (atoms[i] + atoms[i + 1]));
  }
  eval_points.push_back(2.0 * atoms.back());

  for (const auto& xs : {sample_fast_path(*dist, 3),
                         sample_des_path(*dist, 4)}) {
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    double max_gap = 0.0;
    for (const double v : eval_points) {
      const double expected = dist->cdf(v);
      const auto upper = std::upper_bound(sorted.begin(), sorted.end(), v);
      const double observed =
          static_cast<double>(upper - sorted.begin()) /
          static_cast<double>(sorted.size());
      max_gap = std::max(max_gap, std::abs(observed - expected));
    }
    EXPECT_LT(max_gap, 0.03);
  }
}

TEST(FailureDistKs, QuantileGridMatchesEmpiricalQuantiles) {
  // Cross-check the two ends of the interface against each other: the
  // empirical quantiles of fast-path samples track the analytic
  // quantile() the DES scheduling relies on.
  for (const auto& spec :
       {FailureDistSpec::weibull(0.7), FailureDistSpec::lognormal(1.2)}) {
    const auto dist = spec.instantiate(1e-5);
    auto xs = sample_fast_path(*dist, 5);
    std::sort(xs.begin(), xs.end());
    for (const double u : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      const double analytic = dist->quantile(u);
      const double empirical =
          xs[static_cast<std::size_t>(u * static_cast<double>(xs.size()))];
      // The empirical quantile's asymptotic standard error is
      // sqrt(u(1-u)/n) / pdf(q); allow a 4-sigma band.
      const double se = std::sqrt(u * (1.0 - u) / kSamples) /
                        dist->pdf(analytic);
      EXPECT_NEAR(empirical, analytic, 4.0 * se)
          << spec.to_string() << " u=" << u;
    }
  }
}

}  // namespace
}  // namespace ayd::model
