#include "ayd/math/summation.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

namespace ayd::math {
namespace {

TEST(KahanSum, BasicAccumulation) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(KahanSum, EmptyIsZero) {
  const KahanSum s;
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(KahanSum, RecoversCancellationNaiveSumLoses) {
  // 1.0 + 1e-16 repeated: naive summation never advances past 1.0.
  KahanSum s;
  s.add(1.0);
  double naive = 1.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    s.add(1e-16);
    naive += 1e-16;
  }
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates the naive failure
  EXPECT_NEAR(s.value(), 1.0 + kN * 1e-16, 1e-18);
}

TEST(KahanSum, NeumaierHandlesLargeThenSmall) {
  // Classic Neumaier test: [1, 1e100, 1, -1e100] sums to 2.
  KahanSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(KahanSum, MergePreservesTotalAndCount) {
  KahanSum a, b, whole;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i) * 1e10 + 1e-6;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.value(), whole.value(), std::abs(whole.value()) * 1e-15);
}

TEST(CompensatedSum, SpanInterface) {
  const std::vector<double> xs{0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(compensated_sum(xs), 1.0, 1e-15);
}

TEST(CompensatedMean, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(compensated_mean({}), 0.0);
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(compensated_mean(xs), 4.0);
}

TEST(CompensatedSum, IllConditionedAlternatingSeries) {
  // Σ (-1)^i · i over i < 2n is -n; add tiny noise terms that a naive sum
  // absorbs incorrectly.
  std::vector<double> xs;
  constexpr int kN = 1000;
  for (int i = 0; i < 2 * kN; ++i) {
    xs.push_back((i % 2 == 0 ? 1.0 : -1.0) * i * 1e8);
    xs.push_back(1e-8);
  }
  // Pairwise (even − odd) differences leave −kN·1e8, plus the noise terms.
  const double expected = -static_cast<double>(kN) * 1e8 + 2.0 * kN * 1e-8;
  EXPECT_NEAR(compensated_sum(xs), expected, 1e-7);
}

}  // namespace
}  // namespace ayd::math
