// Equivalence of the SIMD-tier bulk sampling with the pinned scalar
// reference (the two-golden-tier policy, docs/reproducing-the-paper.md):
//
//  * Under the forced scalar tier, sample_units_fast / units_from_uniforms
//    / from_unit_bulk are bit-identical to the pinned scalar methods —
//    the tier dispatch must be invisible when it selects the reference.
//  * Under the AVX2 tier, the vectorized transcendental kernels may
//    differ from libm, but only within tight relative-error bounds that
//    are orders of magnitude below both the distributions' statistical
//    resolution and the fast simulator's 1e-4 threshold margin. The
//    bounds are per-distribution: near the edge of Acklam's central
//    region the normal quantile's rational approximation is
//    ill-conditioned (condition number ~700), so the lognormal bound is
//    looser than the exponential's few-ULP one — for *both* tiers' own
//    reasons, not because the vector kernel is sloppy.
//  * from_unit_bulk is exact in every tier for the linear scalings
//    (exponential, Weibull); only the lognormal's exp vectorizes.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/model/failure_dist.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

struct SpecCase {
  FailureDistSpec spec;
  /// Relative-error bound for the AVX2 unit transform vs the scalar one.
  double unit_rel_tol;
  /// Relative-error bound for the AVX2 from_unit_bulk vs scalar from_unit.
  double scale_rel_tol;
};

std::vector<SpecCase> cases() {
  return {
      // -log1p is matched to a few ULP by the vector log.
      {FailureDistSpec::exponential(), 1e-14, 0.0},
      // pow(t, 1/k) amplifies the log's ULPs by |log t / k|; bounds sized
      // from the measured worst case (~25 ULP at k = 0.7) with headroom.
      {FailureDistSpec::weibull(0.7), 1e-12, 0.0},
      {FailureDistSpec::weibull(1.5), 1e-12, 0.0},
      // Acklam's rational is ill-conditioned near its region boundary;
      // the scalar and vector evaluations legitimately disagree by up to
      // ~3e-13 relative there (both are within the approximation's own
      // 1.15e-9 error of the true quantile).
      {FailureDistSpec::lognormal(0.5), 1e-11, 1e-13},
      {FailureDistSpec::lognormal(2.0), 1e-11, 1e-13},
  };
}

/// a == b bitwise (covers ±0 and equal infinities), or within rel_tol.
::testing::AssertionResult close_rel(double a, double b, double rel_tol) {
  if (a == b) return ::testing::AssertionSuccess();
  const double scale = std::max(std::abs(a), std::abs(b));
  const double err = std::abs(a - b) / scale;
  if (err <= rel_tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (relative error " << err << " > " << rel_tol
         << ")";
}

constexpr std::size_t kN = 4099;  // odd: exercises the remainder lanes
constexpr double kRate = 3.2e-6;

TEST(FailureDistSimd, ScalarTierBulkPathsAreBitIdenticalToPinnedMethods) {
  rng::simd::force_tier(rng::simd::Tier::kScalar);
  for (const SpecCase& c : cases()) {
    const auto dist = c.spec.instantiate(kRate);
    std::vector<double> za(kN), zb(kN), u(kN);
    rng::RngStream ra(2024), rb(2024), ru(2024);
    dist->sample_units(ra, za.data(), kN);
    dist->sample_units_fast(rb, zb.data(), kN);
    ru.fill_uniform01(u.data(), kN);
    dist->units_from_uniforms(u.data(), kN);
    // Same engine words consumed, same values produced — bitwise.
    EXPECT_EQ(ra.engine().state(), rb.engine().state()) << c.spec.to_string();
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(za[i], zb[i]) << c.spec.to_string() << " unit " << i;
      ASSERT_EQ(za[i], u[i]) << c.spec.to_string() << " transform " << i;
    }
    std::vector<double> out(kN);
    dist->from_unit_bulk(za.data(), out.data(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], dist->from_unit(za[i]))
          << c.spec.to_string() << " scale " << i;
    }
  }
  rng::simd::clear_forced_tier();
}

TEST(FailureDistSimd, Avx2TierMatchesScalarWithinPerDistributionBounds) {
  if (!rng::simd::avx2_available()) {
    GTEST_SKIP() << "AVX2 not available on this host";
  }
  for (const SpecCase& c : cases()) {
    const auto dist = c.spec.instantiate(kRate);

    rng::simd::force_tier(rng::simd::Tier::kScalar);
    std::vector<double> scalar_z(kN);
    rng::RngStream rs(77);
    dist->sample_units_fast(rs, scalar_z.data(), kN);

    rng::simd::force_tier(rng::simd::Tier::kAvx2);
    std::vector<double> simd_z(kN);
    rng::RngStream rv(77);
    dist->sample_units_fast(rv, simd_z.data(), kN);

    // Identical word consumption; values within the per-dist bound.
    EXPECT_EQ(rs.engine().state(), rv.engine().state()) << c.spec.to_string();
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(close_rel(scalar_z[i], simd_z[i], c.unit_rel_tol))
          << c.spec.to_string() << " unit " << i;
    }

    // from_unit_bulk: exact for the linear scalings regardless of tier;
    // within the exp-kernel bound for the lognormal.
    std::vector<double> out(kN);
    dist->from_unit_bulk(scalar_z.data(), out.data(), kN);
    rng::simd::force_tier(rng::simd::Tier::kScalar);
    for (std::size_t i = 0; i < kN; ++i) {
      if (c.scale_rel_tol == 0.0) {
        ASSERT_EQ(out[i], dist->from_unit(scalar_z[i]))
            << c.spec.to_string() << " scale " << i;
      } else {
        ASSERT_TRUE(
            close_rel(out[i], dist->from_unit(scalar_z[i]), c.scale_rel_tol))
            << c.spec.to_string() << " scale " << i;
      }
    }
  }
  rng::simd::clear_forced_tier();
}

TEST(FailureDistSimd, TierControlsBehaveAsDocumented) {
  // Forcing the scalar tier always works; forcing AVX2 on a host without
  // it is ignored (active_tier stays scalar there).
  rng::simd::force_tier(rng::simd::Tier::kScalar);
  EXPECT_EQ(rng::simd::active_tier(), rng::simd::Tier::kScalar);
  rng::simd::force_tier(rng::simd::Tier::kAvx2);
  if (rng::simd::avx2_available()) {
    EXPECT_EQ(rng::simd::active_tier(), rng::simd::Tier::kAvx2);
  } else {
    EXPECT_EQ(rng::simd::active_tier(), rng::simd::Tier::kScalar);
  }
  rng::simd::clear_forced_tier();
  EXPECT_STREQ(rng::simd::tier_name(rng::simd::Tier::kScalar), "scalar");
}

TEST(FailureDistSimd, DegenerateAndTraceKindsKeepScalarSemantics) {
  // Rate 0 ("never fails") and trace replay do not factor through unit
  // variates; the tier-aware entry points must preserve the base-class
  // behaviour (forward / throw), not silently vectorize.
  const auto never = FailureDistSpec::weibull(0.7).instantiate(0.0);
  EXPECT_FALSE(never->unit_samplable());
  double z[4] = {0.1, 0.2, 0.3, 0.4};
  EXPECT_THROW(never->units_from_uniforms(z, 4), util::Error);
}

}  // namespace
}  // namespace ayd::model
