#include "ayd/core/optimizer.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/first_order.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace ayd::core {
namespace {

using model::Scenario;
using model::System;

TEST(OptimalPeriod, IsALocalMinimumOfExactOverhead) {
  for (const auto& platform : model::all_platforms()) {
    for (const Scenario s : model::all_scenarios()) {
      const System sys = System::from_platform(platform, s);
      const double p = platform.measured_procs;
      const PeriodOptimum opt = optimal_period(sys, p);
      EXPECT_TRUE(opt.converged) << platform.name;
      EXPECT_FALSE(opt.at_boundary) << platform.name;
      const double h_star = pattern_overhead(sys, {opt.period, p});
      EXPECT_NEAR(h_star, opt.overhead, 1e-9 * h_star);
      for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
        EXPECT_GT(pattern_overhead(sys, {opt.period * factor, p}), h_star)
            << platform.name << " scenario " << model::scenario_name(s)
            << " factor " << factor;
      }
    }
  }
}

TEST(OptimalPeriod, AgreesWithTheorem1Asymptoticallly) {
  // As λ → 0 the numerical optimum converges to the first-order period.
  const System base = System::from_platform(model::hera(), Scenario::kS3);
  double prev_gap = 1e9;
  for (const double lambda : {1e-8, 1e-10, 1e-12}) {
    const System sys = base.with_lambda(lambda);
    const double t_fo = optimal_period_first_order(sys, 512.0);
    const PeriodOptimum num = optimal_period(sys, 512.0);
    const double gap = std::abs(num.period - t_fo) / t_fo;
    EXPECT_LT(gap, prev_gap);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 1e-3);
}

TEST(OptimalPeriod, ErrorFreeHitsUpperBoundary) {
  const System sys(model::FailureModel::error_free(),
                   model::resolve(model::hera(), Scenario::kS3), 3600.0,
                   model::Speedup::amdahl(0.1));
  const PeriodOptimum opt = optimal_period(sys, 512.0);
  EXPECT_TRUE(opt.at_boundary);
  // Overhead tends to H(P) from above as T grows.
  EXPECT_NEAR(opt.overhead, sys.error_free_overhead(512.0),
              0.01 * opt.overhead);
}

TEST(OptimalAllocation, InteriorOptimumOnRealPlatforms) {
  for (const Scenario s :
       {Scenario::kS1, Scenario::kS2, Scenario::kS3, Scenario::kS4}) {
    const System sys = System::from_platform(model::hera(), s);
    const AllocationOptimum opt = optimal_allocation(sys);
    EXPECT_TRUE(opt.converged) << model::scenario_name(s);
    EXPECT_FALSE(opt.at_boundary) << model::scenario_name(s);
    EXPECT_GT(opt.procs, 1.0);
    EXPECT_LT(opt.procs, 1e6);
    // Joint optimality: perturbing P (with re-optimised T) can't help.
    const double h_star = opt.log_overhead;
    for (const double factor : {0.5, 2.0}) {
      const PeriodOptimum other =
          optimal_period(sys, opt.procs * factor);
      EXPECT_GT(other.log_overhead, h_star)
          << model::scenario_name(s) << " factor " << factor;
    }
  }
}

TEST(OptimalAllocation, IntegerRefinementReturnsWholeProcessors) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  const AllocationOptimum opt = optimal_allocation(sys);
  EXPECT_DOUBLE_EQ(opt.procs, std::floor(opt.procs));
  EXPECT_NEAR(opt.procs, opt.procs_continuous, 1.0);
}

TEST(OptimalAllocation, MatchesFirstOrderAtSmallLambda) {
  // At λ = 1e-12 the closed forms should match the numerical optimum to
  // well under a percent in overhead and a few percent in P*.
  for (const Scenario s : {Scenario::kS1, Scenario::kS3}) {
    const System sys =
        System::from_platform(model::hera(), s).with_lambda(1e-12);
    const FirstOrderSolution fo = solve_first_order(sys);
    ASSERT_TRUE(fo.has_optimum);
    AllocationSearchOptions opt;
    opt.max_procs = 1e9;
    const AllocationOptimum num = optimal_allocation(sys, opt);
    EXPECT_NEAR(num.procs, fo.procs, 0.05 * fo.procs)
        << model::scenario_name(s);
    EXPECT_NEAR(num.overhead, fo.overhead, 1e-3 * fo.overhead)
        << model::scenario_name(s);
  }
}

TEST(OptimalAllocation, Scenario6InteriorOptimumBeyondScenario5) {
  // First-order analysis (case 3) predicts no bounded optimum, but the
  // exact model has one (higher-order terms — notably downtime — grow
  // with P). The paper's Figure 2 shows scenario 6 with a *larger* P*
  // and *smaller* T* than scenario 5; reproduce that ordering.
  const System s5 = System::from_platform(model::hera(), Scenario::kS5);
  const System s6 = System::from_platform(model::hera(), Scenario::kS6);
  AllocationSearchOptions opt;
  opt.max_procs = 1e8;
  const AllocationOptimum o5 = optimal_allocation(s5, opt);
  const AllocationOptimum o6 = optimal_allocation(s6, opt);
  EXPECT_FALSE(o5.at_boundary);
  EXPECT_FALSE(o6.at_boundary);
  EXPECT_GT(o6.procs, o5.procs);
  EXPECT_LT(o6.period, o5.period);
}

TEST(OptimalAllocation, TightCapReportsBoundary) {
  // Cap the search well below the interior optimum: the optimiser must
  // flag the boundary instead of fabricating an interior solution.
  const System sys = System::from_platform(model::hera(), Scenario::kS6);
  AllocationSearchOptions opt;
  opt.max_procs = 64.0;
  const AllocationOptimum capped = optimal_allocation(sys, opt);
  EXPECT_TRUE(capped.at_boundary);
  EXPECT_NEAR(capped.procs_continuous, 64.0, 2.0);
}

TEST(OptimalAllocation, MoreReliableMeansMoreProcessors) {
  const System base = System::from_platform(model::hera(), Scenario::kS1);
  AllocationSearchOptions opt;
  opt.max_procs = 1e9;
  double prev = 0.0;
  for (const double lambda : {1e-8, 1e-9, 1e-10}) {
    const AllocationOptimum o =
        optimal_allocation(base.with_lambda(lambda), opt);
    EXPECT_GT(o.procs, prev) << "lambda=" << lambda;
    prev = o.procs;
  }
}

TEST(OptimalAllocation, InnerPeriodBoundaryPropagatesToTheJointResult) {
  // Cap the *period* domain far below the interior optimum: every inner
  // search stops at max_period, so the joint result sits on a domain
  // edge and must say so — not report a converged interior optimum.
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  AllocationSearchOptions opt;
  opt.period.max_period = 30.0;  // T* is in the thousands of seconds
  const AllocationOptimum capped = optimal_allocation(sys, opt);
  EXPECT_TRUE(capped.at_boundary);
  // It is indeed the inner search that hit the edge at the reported P.
  const PeriodOptimum inner = optimal_period(sys, capped.procs, opt.period);
  EXPECT_TRUE(inner.at_boundary);
  EXPECT_NEAR(capped.period, 30.0, 1.0);
  // The uncapped search on the same system is interior: the flag above
  // comes from the period cap, not from P running out of room.
  EXPECT_FALSE(optimal_allocation(sys).at_boundary);
}

TEST(OptimalAllocation, RespectsDomainOptions) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  AllocationSearchOptions opt;
  opt.min_procs = 100.0;
  opt.max_procs = 200.0;
  const AllocationOptimum o = optimal_allocation(sys, opt);
  EXPECT_GE(o.procs, 100.0);
  EXPECT_LE(o.procs, 200.0);
}

TEST(OptimalAllocation, InvalidDomainRejected) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);
  AllocationSearchOptions opt;
  opt.min_procs = 10.0;
  opt.max_procs = 5.0;
  EXPECT_THROW((void)optimal_allocation(sys, opt), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::core
