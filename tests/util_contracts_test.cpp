#include "ayd/util/contracts.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::util {
namespace {

TEST(Require, PassesWhenTrue) {
  EXPECT_NO_THROW(AYD_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Require, ThrowsInvalidArgumentWhenFalse) {
  EXPECT_THROW(AYD_REQUIRE(false, "must not happen"), InvalidArgument);
}

TEST(Require, MessageContainsExpressionAndNote) {
  try {
    AYD_REQUIRE(2 < 1, "ordering broken");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("ordering broken"), std::string::npos) << what;
  }
}

TEST(Ensure, ThrowsLogicErrorWhenFalse) {
  EXPECT_THROW(AYD_ENSURE(false, "invariant"), LogicError);
  EXPECT_NO_THROW(AYD_ENSURE(true, "invariant"));
}

TEST(RequireFinite, AcceptsFiniteRejectsNanInf) {
  const double ok = 1.5;
  EXPECT_NO_THROW(AYD_REQUIRE_FINITE(ok));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(AYD_REQUIRE_FINITE(nan), InvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(AYD_REQUIRE_FINITE(inf), InvalidArgument);
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw LogicError("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw CliError("x"), Error);
}

TEST(ErrorHierarchy, CatchableAsStdException) {
  try {
    throw NumericalError("no convergence");
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "no convergence");
  }
}

}  // namespace
}  // namespace ayd::util
