// Crash robustness of the shared-memory transport:
//  * a client SIGKILLed mid-request/mid-reply-read is reaped by the
//    server's housekeeping (slot reclaimed, in-flight replies dropped)
//    while other clients stay unperturbed;
//  * a segment left behind by a SIGKILLed *server* is detected as stale
//    and recovered by the next server start, while a *live* server's
//    segment is refused.
//
// Fork discipline as in service_shm_stress_test.cpp: all children fork
// before the parent creates any threads. Skipped under ThreadSanitizer
// (fork-based).

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ayd/service/server.hpp"
#include "ayd/service/shm_transport.hpp"

#if defined(__SANITIZE_THREAD__)
#define AYD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AYD_TSAN 1
#endif
#endif

namespace ayd::service {
namespace {

using namespace std::chrono_literals;

/// Attaches with a retry window (the segment appears only once the
/// parent/child server finishes constructing).
std::unique_ptr<ShmClient> attach_with_retry(const std::string& name) {
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  for (;;) {
    try {
      return std::make_unique<ShmClient>(name);
    } catch (const ShmError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(10ms);
    }
  }
}

/// Victim body: attach and hammer requests until SIGKILLed. The kill
/// lands at an arbitrary point of the call cycle — mid-push,
/// mid-compute-wait, or mid-reply-read.
[[noreturn]] void run_victim(const std::string& name) {
  try {
    auto client = attach_with_retry(name);
    for (std::uint64_t i = 0;; ++i) {
      (void)client->call(R"({"op":"plan","id":)" + std::to_string(i) +
                         R"(,"platform":"hera","work":1e18})");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "victim: %s\n", e.what());
    std::_Exit(2);
  }
}

TEST(ShmCrash, SigkilledClientIsReclaimedAndOthersUnperturbed) {
#ifdef AYD_TSAN
  GTEST_SKIP() << "fork-based crash test is not TSan-compatible";
#endif
  const std::string name = "crash" + std::to_string(::getpid());

  const pid_t victim = ::fork();
  ASSERT_GE(victim, 0);
  if (victim == 0) run_victim(name);  // never returns

  // With exactly 2 client slots, the survivor below can only attach if
  // the victim's slot is actually reclaimed.
  PlanningService service({/*threads=*/2});
  ShmOptions options;
  options.max_clients = 2;
  ShmServer server(name, service, options);

  // A well-behaved survivor shares the segment for the whole episode.
  ShmClient survivor(name);
  const std::string probe =
      R"({"op":"plan","id":"s","platform":"atlas","work":2e18})";
  const std::string expected = survivor.call(probe);

  // Let the victim get a healthy stream going, then kill it mid-flight.
  std::this_thread::sleep_for(200ms);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Housekeeping reaps the dead pid and frees the slot.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.stats().reclaimed_clients == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "server never reclaimed the killed client";
    std::this_thread::sleep_for(5ms);
  }

  // The survivor kept its slot and its answers.
  EXPECT_EQ(survivor.call(probe), expected);

  // The freed slot is reusable: a new client takes the table's second
  // slot (max_clients=2: survivor + this one only fits post-reclaim)
  // and round-trips with the same bytes.
  ShmClient replacement(name);
  EXPECT_EQ(replacement.call(probe), expected);

  EXPECT_GE(server.stats().requests, 2u);
}

/// Server-child body: builds its own service + shm server, then spins
/// until SIGKILLed (leaving the segment behind, pid published).
[[noreturn]] void run_doomed_server(const std::string& name) {
  try {
    PlanningService service({/*threads=*/1});
    ShmServer server(name, service);
    for (;;) std::this_thread::sleep_for(50ms);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "doomed server: %s\n", e.what());
    std::_Exit(2);
  }
}

TEST(ShmCrash, KilledServersSegmentIsDetectedStaleAndRecovered) {
#ifdef AYD_TSAN
  GTEST_SKIP() << "fork-based crash test is not TSan-compatible";
#endif
  const std::string name = "stale" + std::to_string(::getpid());
  const std::string path = ShmServer::segment_path(name);

  const pid_t doomed = ::fork();
  ASSERT_GE(doomed, 0);
  if (doomed == 0) run_doomed_server(name);  // never returns

  // Wait until the child's segment is fully published (a client attach
  // succeeding proves pid + geometry are live).
  { auto probe = attach_with_retry(name); }

  PlanningService service({/*threads=*/1});

  // While the child lives, its segment is defended.
  try {
    ShmServer conflict(name, service);
    FAIL() << "serving over a live server must refuse";
  } catch (const ShmError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(e.reason().find("already served by live pid"),
              std::string::npos)
        << e.reason();
  }

  // SIGKILL the server: no destructor, no unlink — the stale-segment
  // signature.
  ASSERT_EQ(::kill(doomed, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(doomed, &status, 0), doomed);
  ASSERT_TRUE(WIFSIGNALED(status));
  struct ::stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0)
      << "the killed server must leave its segment behind";

  // The next start detects the dead pid, recovers, and serves.
  ShmServer recovered(name, service);
  EXPECT_TRUE(recovered.stats().recovered_stale);
  ShmClient client(name);
  const std::string reply =
      client.call(R"({"op":"stats","id":1})");
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
}

}  // namespace
}  // namespace ayd::service
