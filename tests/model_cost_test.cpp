#include "ayd/model/cost.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

TEST(CostModel, GeneralFormEvaluation) {
  const CostModel m(10.0, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(m.cost(1.0), 10.0 + 100.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.cost(10.0), 10.0 + 10.0 + 5.0);
  EXPECT_DOUBLE_EQ(m.cost(1000.0), 10.0 + 0.1 + 500.0);
}

TEST(CostModel, Factories) {
  EXPECT_DOUBLE_EQ(CostModel::constant(439.0).cost(1024.0), 439.0);
  EXPECT_DOUBLE_EQ(CostModel::linear(0.5859375).cost(512.0), 300.0);
  EXPECT_DOUBLE_EQ(CostModel::inverse(153600.0).cost(512.0), 300.0);
  EXPECT_TRUE(CostModel::zero().is_zero());
}

TEST(CostModel, CoefficientAccessors) {
  const CostModel m(1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(m.constant_coeff(), 1.0);
  EXPECT_DOUBLE_EQ(m.inverse_coeff(), 2.0);
  EXPECT_DOUBLE_EQ(m.linear_coeff(), 3.0);
}

TEST(CostModel, AdditionIsComponentwise) {
  const CostModel c = CostModel::inverse(100.0);
  const CostModel v = CostModel::constant(15.4);
  const CostModel sum = c + v;
  EXPECT_DOUBLE_EQ(sum.constant_coeff(), 15.4);
  EXPECT_DOUBLE_EQ(sum.inverse_coeff(), 100.0);
  EXPECT_DOUBLE_EQ(sum.linear_coeff(), 0.0);
  EXPECT_DOUBLE_EQ(sum.cost(10.0), c.cost(10.0) + v.cost(10.0));
}

TEST(CostModel, RejectsNegativeAndNonFinite) {
  EXPECT_THROW(CostModel(-1.0, 0.0, 0.0), util::InvalidArgument);
  EXPECT_THROW(CostModel(0.0, -1.0, 0.0), util::InvalidArgument);
  EXPECT_THROW(CostModel(0.0, 0.0, -1.0), util::InvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(CostModel(nan, 0.0, 0.0), util::InvalidArgument);
}

TEST(CostModel, RejectsSubUnitProcessorCount) {
  EXPECT_THROW((void)CostModel::constant(1.0).cost(0.0),
               util::InvalidArgument);
}

TEST(CostModel, Describe) {
  EXPECT_EQ(CostModel::zero().describe(), "0");
  EXPECT_EQ(CostModel::constant(439.0).describe(), "439");
  EXPECT_EQ(CostModel::linear(0.5).describe(), "0.5*P");
  EXPECT_EQ(CostModel::inverse(100.0).describe(), "100/P");
  EXPECT_EQ(CostModel(1.0, 2.0, 3.0).describe(), "1 + 2/P + 3*P");
}

TEST(CostModel, MonotonicityPerShape) {
  // Constant: flat; inverse: decreasing; linear: increasing.
  EXPECT_DOUBLE_EQ(CostModel::constant(5.0).cost(2.0),
                   CostModel::constant(5.0).cost(2000.0));
  EXPECT_GT(CostModel::inverse(5.0).cost(2.0),
            CostModel::inverse(5.0).cost(2000.0));
  EXPECT_LT(CostModel::linear(5.0).cost(2.0),
            CostModel::linear(5.0).cost(2000.0));
}

}  // namespace
}  // namespace ayd::model
