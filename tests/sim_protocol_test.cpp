#include "ayd/sim/protocol.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/stats/running.hpp"

namespace ayd::sim {
namespace {

using model::CostModel;
using model::FailureModel;
using model::ResilienceCosts;
using model::Speedup;
using model::System;

System make_system(double lambda, double f, double c, double v, double d) {
  ResilienceCosts costs{CostModel::constant(c), CostModel::constant(c),
                        CostModel::constant(v)};
  return System(FailureModel(lambda, f), costs, d, Speedup::amdahl(0.1));
}

TEST(DesProtocol, ErrorFreePatternIsExact) {
  const System sys = make_system(0.0, 0.0, 120.0, 30.0, 3600.0);
  DesProtocolSimulator simulator(sys, {5000.0, 64.0});
  rng::RngStream rng(1);
  const PatternStats s = simulator.simulate_pattern(rng);
  EXPECT_DOUBLE_EQ(s.wall_time, 5000.0 + 30.0 + 120.0);
  EXPECT_EQ(s.attempts, 1u);
  EXPECT_EQ(s.fail_stop_errors, 0u);
  EXPECT_EQ(s.silent_detections, 0u);
}

TEST(FastProtocol, ErrorFreePatternIsExact) {
  const System sys = make_system(0.0, 0.0, 120.0, 30.0, 3600.0);
  FastProtocolSimulator simulator(sys, {5000.0, 64.0});
  rng::RngStream rng(1);
  const PatternStats s = simulator.simulate_pattern(rng);
  EXPECT_DOUBLE_EQ(s.wall_time, 5000.0 + 30.0 + 120.0);
  EXPECT_EQ(s.attempts, 1u);
}

TEST(DesProtocol, AttemptAccountingInvariant) {
  // attempts == 1 + (non-recovery fail-stops) + silent detections, because
  // each of those triggers exactly one full re-execution while recovery
  // fail-stops only repeat the recovery.
  // lambda*P*(T+V) ~ 0.5 so errors are frequent but completion is feasible.
  const System sys = make_system(1e-7, 0.4, 300.0, 30.0, 1800.0);
  DesProtocolSimulator simulator(sys, {20000.0, 256.0});
  rng::RngStream rng(7);
  for (int i = 0; i < 200; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng);
    EXPECT_EQ(s.attempts, 1u + (s.fail_stop_errors - s.recovery_fail_stops) +
                              s.silent_detections)
        << "pattern " << i;
  }
}

TEST(FastProtocol, AttemptAccountingInvariant) {
  const System sys = make_system(1e-7, 0.4, 300.0, 30.0, 1800.0);
  FastProtocolSimulator simulator(sys, {20000.0, 256.0});
  rng::RngStream rng(7);
  for (int i = 0; i < 200; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng);
    EXPECT_EQ(s.attempts, 1u + (s.fail_stop_errors - s.recovery_fail_stops) +
                              s.silent_detections)
        << "pattern " << i;
  }
}

TEST(Protocols, WallTimeNeverBelowFaultFreeTime) {
  const System sys = make_system(2e-7, 0.3, 150.0, 15.0, 600.0);
  DesProtocolSimulator des(sys, {10000.0, 128.0});
  FastProtocolSimulator fast(sys, {10000.0, 128.0});
  rng::RngStream r1(3), r2(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(des.simulate_pattern(r1).wall_time, 10000.0 + 15.0 + 150.0);
    EXPECT_GE(fast.simulate_pattern(r2).wall_time, 10000.0 + 15.0 + 150.0);
  }
}

TEST(DesProtocol, SilentOnlySystemDetectsEverySilentError) {
  // f = 0: no fail-stop errors, so nothing can mask a silent error and
  // recovery never fails.
  const System sys = make_system(3e-8, 0.0, 100.0, 10.0, 3600.0);
  DesProtocolSimulator simulator(sys, {30000.0, 512.0});
  rng::RngStream rng(11);
  PatternStats totals;
  for (int i = 0; i < 300; ++i) totals.merge(simulator.simulate_pattern(rng));
  EXPECT_EQ(totals.fail_stop_errors, 0u);
  EXPECT_EQ(totals.masked_silent, 0u);
  EXPECT_GT(totals.silent_detections, 0u);
  // Every detection costs exactly T + V (+R) — check total accounting.
  const double expected_wall =
      static_cast<double>(totals.attempts) * (30000.0 + 10.0) +
      static_cast<double>(totals.silent_detections) * 100.0 +
      300.0 * 100.0;  // final checkpoints
  EXPECT_NEAR(totals.wall_time, expected_wall, 1e-6 * expected_wall);
}

TEST(FastProtocol, FailStopOnlySystemHasNoSilentActivity) {
  const System sys = make_system(3e-8, 1.0, 100.0, 10.0, 60.0);
  FastProtocolSimulator simulator(sys, {30000.0, 512.0});
  rng::RngStream rng(13);
  PatternStats totals;
  for (int i = 0; i < 300; ++i) totals.merge(simulator.simulate_pattern(rng));
  EXPECT_GT(totals.fail_stop_errors, 0u);
  EXPECT_EQ(totals.silent_detections, 0u);
  EXPECT_EQ(totals.masked_silent, 0u);
}

TEST(DesProtocol, DowntimeChargedPerFailStop) {
  // With V = 0 and C = 0 and R = 0 every fail-stop costs its lost time
  // plus exactly D; verify wall >= fail_stops * D.
  ResilienceCosts costs{CostModel::zero(), CostModel::zero(),
                        CostModel::zero()};
  const System sys(FailureModel(1e-7, 1.0), costs, 1000.0,
                   Speedup::amdahl(0.1));
  DesProtocolSimulator simulator(sys, {5000.0, 512.0});
  rng::RngStream rng(17);
  for (int i = 0; i < 50; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng);
    EXPECT_GE(s.wall_time,
              static_cast<double>(s.fail_stop_errors) * 1000.0 + 5000.0);
  }
}

TEST(DesProtocol, TraceAccountsForAllWallTime) {
  const System sys = make_system(2e-7, 0.5, 200.0, 20.0, 900.0);
  DesProtocolSimulator simulator(sys, {15000.0, 256.0});
  rng::RngStream rng(23);
  Trace trace;
  double clock = 0.0;
  PatternStats totals;
  for (int i = 0; i < 20; ++i) {
    const PatternStats s = simulator.simulate_pattern(rng, &trace, clock);
    clock += s.wall_time;
    totals.merge(s);
  }
  // Segments must tile the full wall time exactly.
  double sum = 0.0;
  for (const Segment& seg : trace.segments()) sum += seg.duration();
  EXPECT_NEAR(sum, totals.wall_time, 1e-6 * totals.wall_time);
  // Downtime glyph time == fail_stops * D.
  EXPECT_NEAR(trace.time_in(SegmentKind::kDowntime),
              static_cast<double>(totals.fail_stop_errors) * 900.0, 1e-6);
  // Successful verifications: at least one per pattern.
  EXPECT_GE(trace.time_in(SegmentKind::kVerify),
            20.0 * 20.0 - 1e-9);
}

TEST(DesProtocol, MaskedSilentOnlyWithBothErrorTypes) {
  const System sys = make_system(2e-7, 0.5, 50.0, 5.0, 100.0);
  DesProtocolSimulator simulator(sys, {20000.0, 512.0});
  rng::RngStream rng(29);
  PatternStats totals;
  for (int i = 0; i < 500; ++i) totals.merge(simulator.simulate_pattern(rng));
  // At these rates silent errors strike often and fail-stops mask a
  // fraction of them.
  EXPECT_GT(totals.masked_silent, 0u);
  EXPECT_GT(totals.silent_detections, 0u);
}

TEST(Protocols, DeterministicGivenSeed) {
  const System sys = make_system(1e-7, 0.4, 300.0, 30.0, 1800.0);
  DesProtocolSimulator a(sys, {20000.0, 256.0});
  DesProtocolSimulator b(sys, {20000.0, 256.0});
  rng::RngStream ra(99), rb(99);
  for (int i = 0; i < 50; ++i) {
    const PatternStats sa = a.simulate_pattern(ra);
    const PatternStats sb = b.simulate_pattern(rb);
    EXPECT_DOUBLE_EQ(sa.wall_time, sb.wall_time);
    EXPECT_EQ(sa.fail_stop_errors, sb.fail_stop_errors);
    EXPECT_EQ(sa.silent_detections, sb.silent_detections);
  }
}

}  // namespace
}  // namespace ayd::sim
