#include "ayd/model/platform.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::model {
namespace {

// Table II of the paper, pinned verbatim.

TEST(Platforms, HeraTableII) {
  const Platform p = hera();
  EXPECT_EQ(p.name, "Hera");
  EXPECT_DOUBLE_EQ(p.lambda_ind, 1.69e-8);
  EXPECT_DOUBLE_EQ(p.fail_stop_fraction, 0.2188);
  EXPECT_DOUBLE_EQ(p.measured_procs, 512.0);
  EXPECT_DOUBLE_EQ(p.measured_checkpoint, 300.0);
  EXPECT_DOUBLE_EQ(p.measured_verification, 15.4);
}

TEST(Platforms, AtlasTableII) {
  const Platform p = atlas();
  EXPECT_DOUBLE_EQ(p.lambda_ind, 1.62e-8);
  EXPECT_DOUBLE_EQ(p.fail_stop_fraction, 0.0625);
  EXPECT_DOUBLE_EQ(p.measured_procs, 1024.0);
  EXPECT_DOUBLE_EQ(p.measured_checkpoint, 439.0);
  EXPECT_DOUBLE_EQ(p.measured_verification, 9.1);
}

TEST(Platforms, CoastalTableII) {
  const Platform p = coastal();
  EXPECT_DOUBLE_EQ(p.lambda_ind, 2.34e-9);
  EXPECT_DOUBLE_EQ(p.fail_stop_fraction, 0.1667);
  EXPECT_DOUBLE_EQ(p.measured_procs, 2048.0);
  EXPECT_DOUBLE_EQ(p.measured_checkpoint, 1051.0);
  EXPECT_DOUBLE_EQ(p.measured_verification, 4.5);
}

TEST(Platforms, CoastalSsdTableII) {
  const Platform p = coastal_ssd();
  EXPECT_DOUBLE_EQ(p.lambda_ind, 2.34e-9);
  EXPECT_DOUBLE_EQ(p.measured_checkpoint, 2500.0);
  EXPECT_DOUBLE_EQ(p.measured_verification, 180.0);
}

TEST(Platforms, SilentFractionsMatchTableII) {
  // Table II lists s explicitly; our model derives it as 1 - f.
  EXPECT_NEAR(1.0 - hera().fail_stop_fraction, 0.7812, 1e-12);
  EXPECT_NEAR(1.0 - atlas().fail_stop_fraction, 0.9375, 1e-12);
  EXPECT_NEAR(1.0 - coastal().fail_stop_fraction, 0.8333, 1e-12);
}

TEST(Platforms, AllInPaperOrder) {
  const auto all = all_platforms();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Hera");
  EXPECT_EQ(all[1].name, "Atlas");
  EXPECT_EQ(all[2].name, "Coastal");
  EXPECT_EQ(all[3].name, "Coastal SSD");
}

TEST(Platforms, LookupByNameCaseInsensitive) {
  EXPECT_EQ(platform_by_name("hera").name, "Hera");
  EXPECT_EQ(platform_by_name(" Atlas ").name, "Atlas");
  EXPECT_EQ(platform_by_name("COASTAL SSD").name, "Coastal SSD");
  EXPECT_EQ(platform_by_name("coastal_ssd").name, "Coastal SSD");
  EXPECT_THROW((void)platform_by_name("titan"), util::InvalidArgument);
}

TEST(Platforms, FailureModelProjection) {
  const Platform p = hera();
  const FailureModel fm = p.failure();
  EXPECT_DOUBLE_EQ(fm.lambda_ind(), 1.69e-8);
  EXPECT_DOUBLE_EQ(fm.fail_stop_fraction(), 0.2188);
}

}  // namespace
}  // namespace ayd::model
