// End-to-end integration: the full pipeline the bench binaries run —
// platform presets -> scenario resolution -> first-order + numerical
// optima -> replicated simulation — checked for the paper's headline
// qualitative results.

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/core/baselines.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/exec/thread_pool.hpp"
#include "ayd/model/application.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

namespace ayd {
namespace {

using core::Pattern;
using model::Scenario;
using model::System;

TEST(EndToEnd, HeraScenario1FullPipeline) {
  const System sys = System::from_platform(model::hera(), Scenario::kS1);

  // 1. Closed form (Theorem 2).
  const core::FirstOrderSolution fo = core::solve_first_order(sys);
  ASSERT_TRUE(fo.has_optimum);

  // 2. Numerical optimum agrees to a few percent in (P*, T*) and tighter
  //    in overhead (paper Fig. 2, Hera, scenario 1: the first-order
  //    prediction sits slightly below the exact optimum because the
  //    expansion drops positive O(λ) terms and the downtime).
  const core::AllocationOptimum num = core::optimal_allocation(sys);
  EXPECT_NEAR(fo.procs, num.procs, 0.10 * num.procs);
  EXPECT_NEAR(fo.period, num.period, 0.10 * num.period);
  EXPECT_NEAR(fo.overhead, num.overhead, 0.02 * num.overhead);
  EXPECT_LT(fo.overhead, num.overhead);  // under-, never over-estimates

  // 3. The paper reports overheads around 0.11 for α = 0.1 on these
  //    platforms; sanity-band the prediction.
  EXPECT_GT(num.overhead, 0.10);
  EXPECT_LT(num.overhead, 0.13);

  // 4. Simulation at the first-order pattern reproduces the predicted
  //    overhead.
  exec::ThreadPool pool(2);
  sim::ReplicationOptions opt;
  opt.replicas = 60;
  opt.patterns_per_replica = 80;
  const sim::ReplicationResult r = sim::simulate_overhead(
      sys, Pattern{fo.period, std::round(fo.procs)}, opt, &pool);
  EXPECT_NEAR(r.overhead.mean, fo.overhead, 0.01);
  const double z = (r.overhead.mean - r.analytic_overhead) /
                   std::max(r.overhead.stderr_mean, 1e-12);
  EXPECT_LT(std::abs(z), 5.0);
}

TEST(EndToEnd, OptimalProcsOrderingAcrossScenarios) {
  // Figure 2: P* grows as the checkpoint cost scales better with P —
  // scenario 1 (C = cP) < scenario 3 (C = a) < scenario 5 (C = b/P).
  const System s1 = System::from_platform(model::hera(), Scenario::kS1);
  const System s3 = System::from_platform(model::hera(), Scenario::kS3);
  const System s5 = System::from_platform(model::hera(), Scenario::kS5);
  core::AllocationSearchOptions opt;
  opt.max_procs = 1e8;
  const double p1 = core::optimal_allocation(s1, opt).procs;
  const double p3 = core::optimal_allocation(s3, opt).procs;
  const double p5 = core::optimal_allocation(s5, opt).procs;
  EXPECT_LT(p1, p3);
  EXPECT_LT(p3, p5);
}

TEST(EndToEnd, SmallerAlphaMeansMoreProcessors) {
  // Figure 4(a): as α decreases the optimal allocation grows.
  double prev = 0.0;
  for (const double alpha : {0.1, 0.01, 0.001}) {
    const System sys =
        System::from_platform(model::hera(), Scenario::kS1, alpha);
    const core::FirstOrderSolution fo = core::solve_first_order(sys);
    ASSERT_TRUE(fo.has_optimum);
    EXPECT_GT(fo.procs, prev) << "alpha=" << alpha;
    prev = fo.procs;
  }
}

TEST(EndToEnd, SilentBlindPlannerPaysMeasurableOverhead) {
  // The motivating ablation: planning with a fail-stop-only model and
  // executing under both error sources must cost more than the VC optimum,
  // in simulation, beyond statistical noise.
  const System sys = System::from_platform(model::hera(), Scenario::kS3);
  const double p = 512.0;
  const double t_blind = core::silent_blind_period(sys, p);
  const core::PeriodOptimum vc = core::optimal_period(sys, p);

  sim::ReplicationOptions opt;
  opt.replicas = 80;
  opt.patterns_per_replica = 60;
  const sim::ReplicationResult blind =
      sim::simulate_overhead(sys, {t_blind, p}, opt);
  const sim::ReplicationResult tuned =
      sim::simulate_overhead(sys, {vc.period, p}, opt);
  EXPECT_GT(blind.overhead.mean, tuned.overhead.mean);
}

TEST(EndToEnd, MakespanPredictionForApplication) {
  // A 30-day (sequential) application on Coastal with in-memory
  // checkpointing: expected makespan = H(pattern)·W_total and the
  // error-free baseline is H(P)·W_total.
  const System sys = System::from_platform(model::coastal(), Scenario::kS5);
  const model::Application app{"fusion-sim", 30.0 * 86400.0, 1024.0};
  const core::AllocationOptimum opt = core::optimal_allocation(sys);
  const Pattern pattern{opt.period, opt.procs};
  const double makespan = core::expected_makespan(sys, pattern, app);
  const double error_free =
      model::error_free_makespan(app, sys.error_free_overhead(opt.procs));
  EXPECT_GT(makespan, error_free);
  EXPECT_LT(makespan, 1.5 * error_free);
  const double patterns = model::pattern_count(app, pattern.period,
                                               sys.speedup(pattern.procs));
  EXPECT_GT(patterns, 1.0);
}

TEST(EndToEnd, DowntimeBarelyMovesTheOptimum) {
  // Figure 7: the first-order optimum ignores D and stays close to the
  // numerical optimum even for a 3-hour downtime.
  const System base = System::from_platform(model::hera(), Scenario::kS1);
  const core::FirstOrderSolution fo = core::solve_first_order(base);
  for (const double d : {0.0, 3.0 * 3600.0}) {
    const System sys = base.with_downtime(d);
    const core::AllocationOptimum num = core::optimal_allocation(sys);
    const double h_fo = core::pattern_overhead(
        sys, Pattern{fo.period, std::round(fo.procs)});
    EXPECT_LT((h_fo - num.overhead) / num.overhead, 0.01) << "D=" << d;
  }
}

TEST(EndToEnd, GustafsonProfileThroughNumericalOptimiser) {
  // Extension (paper §V): non-Amdahl profile goes through the generic
  // numerical path; weak scaling tolerates far more processors.
  const System amdahl = System::from_platform(model::hera(), Scenario::kS1);
  const System gustafson = amdahl.with_speedup(model::Speedup::gustafson(0.1));
  core::AllocationSearchOptions opt;
  opt.max_procs = 1e6;
  const core::AllocationOptimum a = core::optimal_allocation(amdahl, opt);
  const core::AllocationOptimum g = core::optimal_allocation(gustafson, opt);
  EXPECT_GT(g.procs, a.procs);
}

}  // namespace
}  // namespace ayd
