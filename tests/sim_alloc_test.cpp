// Steady-state allocation behaviour of the replication driver.
//
// The hot-path overhaul's contract: once a ReplicationScratch (and the
// per-chunk simulator arenas it implies) is warm, simulate_overhead's
// cost is independent of how many replicas/patterns run — in particular,
// the number of heap allocations per call is a small constant, NOT a
// function of the replica count. This test overrides global operator
// new/delete (per-binary, which is why it lives alone) to count
// allocations and pins that invariant.

#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

namespace {

std::size_t g_allocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ayd::sim {
namespace {

std::size_t allocations_during(const model::System& sys,
                               const core::Pattern& pattern,
                               ReplicationOptions opt,
                               ReplicationScratch& scratch) {
  const std::size_t before = g_allocations;
  (void)simulate_overhead(sys, pattern, opt, nullptr, &scratch);
  return g_allocations - before;
}

TEST(SimAllocations, SteadyStateIsIndependentOfReplicaCount) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1);
  const core::Pattern pattern{5000.0, 512.0};

  for (const Backend backend : {Backend::kFast, Backend::kDes}) {
    ReplicationOptions opt;
    opt.backend = backend;
    opt.patterns_per_replica = 50;

    ReplicationScratch scratch;
    // Warm-up at the LARGEST size so the outcome arena never regrows.
    opt.replicas = 96;
    (void)allocations_during(sys, pattern, opt, scratch);

    opt.replicas = 12;
    const std::size_t small = allocations_during(sys, pattern, opt, scratch);
    opt.replicas = 96;
    const std::size_t large = allocations_during(sys, pattern, opt, scratch);

    EXPECT_EQ(small, large)
        << (backend == Backend::kFast ? "fast" : "des")
        << ": allocation count must not scale with replicas";
    // A warm call allocates only per-call constants (distribution
    // instantiations and friends) — a handful, not hundreds.
    EXPECT_LE(large, 16u)
        << (backend == Backend::kFast ? "fast" : "des");
  }
}

TEST(SimAllocations, PatternsPerReplicaCostNoAllocations) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS1);
  const core::Pattern pattern{5000.0, 512.0};

  for (const Backend backend : {Backend::kFast, Backend::kDes}) {
    ReplicationOptions opt;
    opt.backend = backend;
    opt.replicas = 8;

    ReplicationScratch scratch;
    opt.patterns_per_replica = 400;
    (void)allocations_during(sys, pattern, opt, scratch);

    opt.patterns_per_replica = 25;
    const std::size_t few = allocations_during(sys, pattern, opt, scratch);
    opt.patterns_per_replica = 400;
    const std::size_t many = allocations_during(sys, pattern, opt, scratch);

    // 16x the patterns may cost at most a couple of one-time arena
    // growths (e.g. the cancellation-mark vector's first use) — never a
    // per-pattern allocation.
    EXPECT_LE(many, few + 2)
        << (backend == Backend::kFast ? "fast" : "des")
        << ": per-pattern simulation must not allocate";
    EXPECT_LE(many, 16u) << (backend == Backend::kFast ? "fast" : "des");
  }
}

}  // namespace
}  // namespace ayd::sim
