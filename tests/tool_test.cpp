// End-to-end tests of the `ayd` command-line tool, driven through
// tool::run_tool with captured streams (the binary in apps/ is a thin
// wrapper around exactly this entry point).

#include "ayd/tool/tool.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "ayd/tool/commands.hpp"
#include "ayd/util/error.hpp"

namespace ayd::tool {
namespace {

struct ToolRun {
  int code = 0;
  std::string out;
  std::string err;
};

ToolRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_tool(args, out, err);
  return {code, out.str(), err.str()};
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// -- Dispatch and help ---------------------------------------------------

TEST(ToolDispatch, NoArgumentsPrintsUsageAndFails) {
  const ToolRun r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.out, "usage: ayd"));
}

TEST(ToolDispatch, HelpSucceeds) {
  for (const std::string arg : {"help", "--help", "-h"}) {
    const ToolRun r = run({arg});
    EXPECT_EQ(r.code, 0) << arg;
    EXPECT_TRUE(contains(r.out, "commands:")) << arg;
    EXPECT_TRUE(contains(r.out, "optimize")) << arg;
  }
}

TEST(ToolDispatch, VersionPrintsSemver) {
  const ToolRun r = run({"--version"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(contains(r.out, "ayd 1."));
}

TEST(ToolDispatch, UnknownCommandFailsWithMessage) {
  const ToolRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "unknown command"));
  EXPECT_TRUE(r.out.empty());
}

TEST(ToolDispatch, EveryCommandHasWorkingHelp) {
  for (const std::string cmd : {"platforms", "optimize", "simulate", "sweep",
                                "plan", "protocols", "serve", "call"}) {
    const ToolRun r = run({cmd, "--help"});
    EXPECT_EQ(r.code, 0) << cmd;
    EXPECT_TRUE(contains(r.out, "--help")) << cmd;
  }
}

TEST(ToolDispatch, UnknownOptionIsAnError) {
  const ToolRun r = run({"optimize", "--no-such-option=3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "error:"));
}

// -- platforms -----------------------------------------------------------

TEST(ToolPlatforms, ListsAllFourPresets) {
  const ToolRun r = run({"platforms"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const std::string name : {"Hera", "Atlas", "Coastal", "Coastal SSD"}) {
    EXPECT_TRUE(contains(r.out, name)) << name;
  }
  // Table II numbers survive round-trip formatting.
  EXPECT_TRUE(contains(r.out, "1.69e-08"));
  EXPECT_TRUE(contains(r.out, "2500"));
}

TEST(ToolPlatforms, ScenarioFlagPrintsCostModels) {
  const ToolRun r = run({"platforms", "--scenarios"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "0.5859*P"));  // Hera scenario 1 fit
  EXPECT_TRUE(contains(r.out, "C_P = R_P"));
}

// -- optimize ------------------------------------------------------------

TEST(ToolOptimize, HeraScenario1MatchesKnownOptimum) {
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=1"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Figure 2 values: P* (FO) ~ 219, T* (FO) ~ 6239, H ~ 0.108-0.109.
  EXPECT_TRUE(contains(r.out, "218.9"));
  EXPECT_TRUE(contains(r.out, "6239"));
  EXPECT_TRUE(contains(r.out, "Theorem 2"));
}

TEST(ToolOptimize, Scenario6HasNoFirstOrderRow) {
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=6"});
  ASSERT_EQ(r.code, 0) << r.err;
  // First-order row shows placeholders; the numerical row is real.
  EXPECT_TRUE(contains(r.out, "first-order (Thm 2/3)"));
  EXPECT_TRUE(contains(r.out, "numerical"));
  EXPECT_TRUE(contains(r.out, "no first-order") ||
              contains(r.out, "note:"));
}

TEST(ToolOptimize, FixedProcsUsesTheorem1) {
  const ToolRun r =
      run({"optimize", "--platform=hera", "--scenario=3", "--procs=512"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "Theorem 1"));
  EXPECT_TRUE(contains(r.out, "P fixed at 512"));
  // T* = sqrt((V+C)/(lf/2+ls)) = 6240.9... for Hera/s3 at P=512.
  EXPECT_TRUE(contains(r.out, "6240"));
}

TEST(ToolOptimize, CustomSystemFullySpecified) {
  const ToolRun r = run({"optimize", "--platform=custom", "--lambda=1e-8",
                         "--fail-stop-fraction=0.5", "--ckpt-const=200",
                         "--verif-const=20", "--alpha=0.05"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "C_P = R_P = 200"));
  EXPECT_TRUE(contains(r.out, "Theorem 3"));  // constant-cost case
}

TEST(ToolOptimize, CustomWithoutLambdaFails) {
  const ToolRun r =
      run({"optimize", "--platform=custom", "--ckpt-const=100"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "--lambda"));
}

TEST(ToolOptimize, CustomWithoutCostsFails) {
  const ToolRun r = run({"optimize", "--platform=custom", "--lambda=1e-8",
                         "--fail-stop-fraction=0.3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "ckpt"));
}

TEST(ToolOptimize, CostOverrideOnPreset) {
  // Override just the checkpoint cost on top of the Hera preset: the
  // verification cost must still come from the scenario resolution.
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=3",
                         "--ckpt-const=600"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "C_P = R_P = 600"));
  EXPECT_TRUE(contains(r.out, "V_P = 15.4"));
}

TEST(ToolOptimize, CostOverrideReplacesTheWholeModel) {
  // Passing any --ckpt-* coefficient replaces the preset's whole
  // checkpoint model (unset coefficients become zero), it does not merge:
  // Hera scenario 1 has C = 0.5859*P; overriding with --ckpt-const alone
  // must drop the linear term.
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=1",
                         "--ckpt-const=250"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "C_P = R_P = 250"));
  EXPECT_FALSE(contains(r.out, "0.5859"));
}

TEST(ToolOptimize, LambdaOverrideOnPreset) {
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=1",
                         "--lambda=1e-10"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "1e-10"));
  // Lower rate -> more processors than the stock Hera optimum (~207).
  EXPECT_TRUE(contains(r.out, "Theorem 2"));
}

TEST(ToolOptimize, GustafsonProfileRunsNumerically) {
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=3",
                         "--profile=gustafson", "--max-procs=1e5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "gustafson"));
  // Gustafson is not Amdahl-family: no closed form, numerical row only.
  EXPECT_TRUE(contains(r.out, "numerical"));
}

TEST(ToolOptimize, UnknownPlatformFails) {
  const ToolRun r = run({"optimize", "--platform=k-computer"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "unknown platform"));
}

TEST(ToolOptimize, UnknownProfileFails) {
  const ToolRun r = run({"optimize", "--profile=magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "unknown profile"));
}

TEST(ToolOptimize, JsonRecordIsWellFormedJoint) {
  const ToolRun r =
      run({"optimize", "--platform=hera", "--scenario=1", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "\"first_order\""));
  EXPECT_TRUE(contains(r.out, "\"numerical\""));
  EXPECT_TRUE(contains(r.out, "\"has_optimum\": true"));
  EXPECT_TRUE(contains(r.out, "\"lambda_ind\""));
  // No human-readable table in JSON mode.
  EXPECT_FALSE(contains(r.out, "Solution"));
}

TEST(ToolOptimize, JsonRecordFixedProcsHasAllThreeSolutions) {
  const ToolRun r = run({"optimize", "--platform=hera", "--scenario=3",
                         "--procs=512", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "\"higher_order\""));
  EXPECT_TRUE(contains(r.out, "\"procs\": 512"));
}

// -- --failure-dist parsing ----------------------------------------------

TEST(ToolFailureDist, ParsesSpecWithRateOverrides) {
  // The mtbf/lambda entries work with and without shape parameters.
  const ParsedFailureDist bare = parse_failure_dist("exponential,mtbf=2e9");
  EXPECT_TRUE(bare.spec.memoryless());
  ASSERT_TRUE(bare.lambda_override.has_value());
  EXPECT_DOUBLE_EQ(*bare.lambda_override, 0.5e-9);

  const ParsedFailureDist shaped =
      parse_failure_dist("weibull:k=0.7,mtbf=2e9");
  EXPECT_EQ(shaped.spec, model::FailureDistSpec::weibull(0.7));
  ASSERT_TRUE(shaped.lambda_override.has_value());
  EXPECT_DOUBLE_EQ(*shaped.lambda_override, 0.5e-9);

  const ParsedFailureDist direct =
      parse_failure_dist("lognormal:sigma=1.2,lambda=3e-9");
  EXPECT_EQ(direct.spec, model::FailureDistSpec::lognormal(1.2));
  ASSERT_TRUE(direct.lambda_override.has_value());
  EXPECT_DOUBLE_EQ(*direct.lambda_override, 3e-9);

  EXPECT_FALSE(parse_failure_dist("exponential").lambda_override);
  EXPECT_THROW((void)parse_failure_dist("weibull:k=0.7,mtbf=zero"),
               util::CliError);
  EXPECT_THROW((void)parse_failure_dist("trace:"), util::CliError);
}

TEST(ToolFailureDist, TraceAcceptsTrailingRateOverride) {
  const std::string path = ::testing::TempDir() + "/ayd_trace_mtbf.csv";
  {
    std::ofstream log(path);
    log << "gap_seconds\n100\n200\n300\n";
  }
  const ParsedFailureDist parsed =
      parse_failure_dist("trace:" + path + ",mtbf=2e9");
  EXPECT_EQ(parsed.spec.kind(), model::FailureDistKind::kTraceReplay);
  EXPECT_EQ(parsed.spec.trace_gaps().size(), 3u);
  EXPECT_EQ(parsed.spec.trace_source(), path);
  ASSERT_TRUE(parsed.lambda_override.has_value());
  EXPECT_DOUBLE_EQ(*parsed.lambda_override, 0.5e-9);
  std::remove(path.c_str());
}

TEST(ToolFailureDist, SimulateAcceptsWeibullDist) {
  const ToolRun r =
      run({"simulate", "--platform=hera", "--scenario=3", "--procs=256",
           "--runs=8", "--patterns=10", "--failure-dist=weibull:k=0.7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "weibull:k=0.7 inter-arrivals"));
  EXPECT_TRUE(contains(r.out, "drift caused by weibull:k=0.7"));
}

TEST(ToolFailureDist, RejectsUnknownDistribution) {
  const ToolRun r =
      run({"optimize", "--platform=hera", "--failure-dist=gaussian"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "bad failure distribution"));
}

// -- simulate ------------------------------------------------------------

TEST(ToolSimulate, AgreesWithAnalyticPrediction) {
  const ToolRun r =
      run({"simulate", "--platform=hera", "--scenario=3", "--procs=512",
           "--runs=40", "--patterns=60", "--seed=7"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "execution overhead"));
  EXPECT_TRUE(contains(r.out, "agreement: z ="));
  EXPECT_TRUE(contains(r.out, "fast sampler"));
}

TEST(ToolSimulate, DesBackendSelectable) {
  const ToolRun r =
      run({"simulate", "--platform=hera", "--scenario=3", "--procs=256",
           "--runs=10", "--patterns=20", "--des"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "DES engine"));
}

TEST(ToolSimulate, ExplicitPatternIsEchoed) {
  const ToolRun r =
      run({"simulate", "--platform=atlas", "--scenario=1", "--procs=1024",
           "--period=5000", "--runs=10", "--patterns=20"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "T = 5000"));
  EXPECT_TRUE(contains(r.out, "P = 1024"));
}

TEST(ToolSimulate, DeterministicForSameSeed) {
  const std::vector<std::string> args = {
      "simulate", "--platform=hera", "--scenario=1", "--procs=128",
      "--runs=12", "--patterns=30", "--seed=99"};
  const ToolRun a = run(args);
  const ToolRun b = run(args);
  ASSERT_EQ(a.code, 0);
  EXPECT_EQ(a.out, b.out);
}

TEST(ToolSimulate, SeedChangesTheSample) {
  std::vector<std::string> args = {
      "simulate", "--platform=hera", "--scenario=1", "--procs=128",
      "--runs=12", "--patterns=30", "--seed=1"};
  const ToolRun a = run(args);
  args.back() = "--seed=2";
  const ToolRun b = run(args);
  EXPECT_NE(a.out, b.out);
}

// -- sweep ---------------------------------------------------------------

TEST(ToolSweep, LambdaSweepShowsScalingLaw) {
  const ToolRun r =
      run({"sweep", "--var=lambda", "--from=1e-10", "--to=1e-8",
           "--points=3", "--platform=hera", "--scenario=1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "1e-10"));
  EXPECT_TRUE(contains(r.out, "1e-08"));
  EXPECT_TRUE(contains(r.out, "P* (FO)"));
}

TEST(ToolSweep, ProcsSweepUsesFixedAllocationMode) {
  const ToolRun r =
      run({"sweep", "--var=procs", "--from=200", "--to=800", "--points=3",
           "--platform=hera", "--scenario=3", "--linear"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "200"));
  EXPECT_TRUE(contains(r.out, "800"));
}

TEST(ToolSweep, AlphaSweepHandsOffToNumericalAtAlphaEdge) {
  const ToolRun r =
      run({"sweep", "--var=alpha", "--from=1e-4", "--to=1e-1", "--points=4",
           "--platform=hera", "--scenario=3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "0.0001"));
}

TEST(ToolSweep, DowntimeSweepIsLinear) {
  const ToolRun r =
      run({"sweep", "--var=downtime", "--from=0", "--to=10800", "--points=3",
           "--platform=hera", "--scenario=1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "5400"));  // linear midpoint, not geometric
}

TEST(ToolSweep, CsvDumpRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ayd_sweep_test.csv";
  const ToolRun r =
      run({"sweep", "--var=lambda", "--from=1e-10", "--to=1e-9", "--points=2",
           "--platform=hera", "--scenario=1", "--csv=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_TRUE(contains(header, "overhead_opt"));
}

TEST(ToolSweep, RejectsBadRange) {
  const ToolRun r = run({"sweep", "--var=lambda", "--from=1e-8",
                         "--to=1e-10", "--points=3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "error:"));
}

TEST(ToolSweep, RejectsUnknownVariable) {
  const ToolRun r = run({"sweep", "--var=temperature"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "unknown sweep variable"));
}

TEST(ToolSweep, RejectsSinglePointGrid) {
  const ToolRun r = run({"sweep", "--var=lambda", "--from=1e-10",
                         "--to=1e-9", "--points=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(contains(r.err, "two points"));
}

// -- protocols -----------------------------------------------------------

TEST(ToolProtocols, ComparesAllThreeProtocols) {
  const ToolRun r = run({"protocols", "--platform=atlas", "--scenario=3",
                         "--procs=256", "--runs=15", "--patterns=30"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "VC (verify + checkpoint)"));
  EXPECT_TRUE(contains(r.out, "multi-verification"));
  EXPECT_TRUE(contains(r.out, "two-level checkpointing"));
  EXPECT_TRUE(contains(r.out, "H simulated"));
}

TEST(ToolProtocols, TwoLevelWinsOnSilentDominatedPlatform) {
  // Atlas (s = 0.9375): the two-level predicted overhead must be the
  // smallest of the three. Parse the "H predicted" column order by
  // checking the two-level row's value is below the VC row's.
  const ToolRun r = run({"protocols", "--platform=atlas", "--scenario=3",
                         "--procs=512", "--runs=5", "--patterns=10"});
  ASSERT_EQ(r.code, 0) << r.err;
  const auto vc_pos = r.out.find("VC (verify + checkpoint)");
  const auto two_pos = r.out.find("two-level checkpointing");
  ASSERT_NE(vc_pos, std::string::npos);
  ASSERT_NE(two_pos, std::string::npos);
  // Extract the predicted-overhead cells (4th column) of both rows.
  const auto cell = [&](std::size_t row_start) {
    std::istringstream row(
        r.out.substr(row_start, r.out.find('\n', row_start) - row_start));
    std::string tok;
    std::vector<std::string> cells;
    while (row >> tok) cells.push_back(tok);
    // "...name tokens... n T H_pred H_sim ±ci": H_pred is cells[-3].
    return std::stod(cells[cells.size() - 3]);
  };
  EXPECT_LT(cell(two_pos), cell(vc_pos));
}

// -- plan ----------------------------------------------------------------

TEST(ToolPlan, ReportsMakespanAndCheckpointCount) {
  const ToolRun r = run({"plan", "--platform=coastal", "--scenario=3",
                         "--work=1e8", "--name=climate-run"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "climate-run"));
  EXPECT_TRUE(contains(r.out, "optimal plan:"));
  EXPECT_TRUE(contains(r.out, "checkpoints"));
  EXPECT_TRUE(contains(r.out, "P* (optimal)"));
  EXPECT_TRUE(contains(r.out, "vs optimal"));
}

TEST(ToolPlan, OverAllocationIsReportedSlower) {
  const ToolRun r =
      run({"plan", "--platform=hera", "--scenario=1", "--work=1e7"});
  ASSERT_EQ(r.code, 0) << r.err;
  // The 4x-overallocated row must show a positive makespan delta.
  const auto pos = r.out.find("4 x P*");
  ASSERT_NE(pos, std::string::npos);
  const std::string row = r.out.substr(pos, r.out.find('\n', pos) - pos);
  EXPECT_TRUE(contains(row, "+")) << row;
}

TEST(ToolPlan, MaxProcsCapsTheAllocation) {
  const ToolRun r = run({"plan", "--platform=hera", "--scenario=1",
                         "--work=1e7", "--max-procs=64"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(contains(r.out, "P* = 64"));
  EXPECT_TRUE(contains(r.out, "boundary"));
}

}  // namespace
}  // namespace ayd::tool
