// Replay test tier (ctest label `replay`): the online re-planning loop
// replayed over committed regime-switch failure logs (tests/data/). The
// tier pins three contracts:
//   1. Determinism — the NDJSON record stream is byte-identical across
//      repeated runs and across thread counts (the loop is a pure
//      function of the gap sequence and the options).
//   2. Detection — the Weibull k 0.7 -> 1.4 shape switch embedded in
//      replay_weibull_shift.csv is detected within a bounded number of
//      events after it happens, and never before.
//   3. Guarding — the stationary trace produces zero re-plans, and the
//      service's "subscribe" op replays the exact records `ayd watch`
//      streams while turning malformed telemetry into error envelopes
//      instead of wedging.

#include "ayd/service/replan.hpp"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "ayd/io/json.hpp"
#include "ayd/io/json_parse.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/service/server.hpp"
#include "ayd/tool/tool.hpp"
#include "ayd/util/error.hpp"

namespace ayd {
namespace {

std::string data_path(const std::string& name) {
  return std::string(AYD_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

struct ToolRun {
  int code = 0;
  std::string out;
  std::string err;
};

ToolRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = tool::run_tool(args, out, err);
  return {code, out.str(), err.str()};
}

// Quick-scale simulation knobs: enough replicas for the optimizer to
// converge, small enough that one replay of a 1200-event trace stays in
// the tens of milliseconds. The exact values are irrelevant to the
// byte-identity assertions — what matters is every run uses the same.
std::vector<std::string> watch_args(const std::string& trace,
                                    const std::string& threads) {
  return {"watch",        "--trace",   trace,
          "--lambda",     "2.78e-4",   "--failure-dist",
          "weibull:k=0.7", "--procs",  "1",
          "--runs",       "8",         "--patterns",
          "32",           "--max-reps", "64",
          "--ci-rel-tol", "0.2",       "--threads",
          threads};
}

std::string record_type(const std::string& line) {
  const io::JsonValue v = io::parse_json(line);
  return v.at("type").as_string();
}

// -- 1. Determinism ------------------------------------------------------

TEST(ReplanReplay, ByteIdenticalAcrossRunsAndThreadCounts) {
  const std::string trace = data_path("replay_weibull_shift.csv");
  const ToolRun first = run(watch_args(trace, "1"));
  const ToolRun again = run(watch_args(trace, "1"));
  const ToolRun wide = run(watch_args(trace, "4"));
  ASSERT_EQ(first.code, 0) << first.err;
  ASSERT_EQ(again.code, 0) << again.err;
  ASSERT_EQ(wide.code, 0) << wide.err;
  // The whole NDJSON stream, byte for byte: same records, same number
  // formatting, same order — a run is a pure function of trace + options.
  EXPECT_EQ(first.out, again.out);
  EXPECT_EQ(first.out, wide.out);
}

// -- 2. Detection of the embedded regime switch --------------------------

TEST(ReplanReplay, DetectsShapeSwitchWithinBoundedDelayAndNotBefore) {
  const std::string trace = data_path("replay_weibull_shift.csv");
  const ToolRun r = run(watch_args(trace, "1"));
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> lines = split_lines(r.out);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(record_type(lines.front()), "plan");
  EXPECT_EQ(record_type(lines.back()), "summary");

  std::vector<io::JsonValue> replans;
  for (const std::string& line : lines) {
    if (record_type(line) == "replan") replans.push_back(io::parse_json(line));
  }
  // The switch is at event 600; the default window is 256. Detection
  // must happen, must not pre-date the switch (the first 600 events are
  // stationary and exactly match the deployed model), and must land
  // within two windows of it.
  ASSERT_FALSE(replans.empty());
  const double first_event = replans.front().at("event").as_double();
  EXPECT_GT(first_event, 600.0);
  EXPECT_LE(first_event, 600.0 + 2.0 * 256.0);

  // Once the window is fully post-switch, the fitted law must be the
  // wear-out Weibull: last accepted fit has family "weibull" and a shape
  // on the k = 1.4 side of the k = 0.7 baseline.
  const io::JsonValue& fit = replans.back().at("fit");
  EXPECT_EQ(fit.at("family").as_string(), "weibull");
  const double shape = fit.at("shape").as_double();
  EXPECT_GT(shape, 1.1);
  EXPECT_LT(shape, 1.8);
  // Wear-out failures tolerate a longer period than bursty ones: the
  // re-published period moves up from the cold plan.
  const io::JsonValue plan = io::parse_json(lines.front());
  EXPECT_GT(replans.back().at("new_period").as_double(),
            plan.at("period").as_double());
}

TEST(ReplanReplay, StationaryStreamPublishesNoReplans) {
  const std::string trace = data_path("replay_stationary_exp.csv");
  const ToolRun r = run({"watch", "--trace", trace, "--lambda", "2.78e-4",
                         "--procs", "1", "--runs", "8", "--patterns", "32",
                         "--max-reps", "64", "--ci-rel-tol", "0.2",
                         "--threads", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> lines = split_lines(r.out);
  ASSERT_GE(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_NE(record_type(line), "replan") << line;
  }
  const io::JsonValue summary = io::parse_json(lines.back());
  EXPECT_EQ(summary.at("replans").as_int(), 0);
  EXPECT_EQ(summary.at("events").as_int(), 800);
}

TEST(ReplanReplay, RateStepRetunesPeriodDownward) {
  // MTBF drops 2 h -> 30 min at event 450: the loop must re-plan and the
  // final period must shrink (Young-Daly scaling: T* ~ sqrt(MTBF)).
  const std::string trace = data_path("replay_rate_step.csv");
  const ToolRun r = run({"watch", "--trace", trace, "--lambda", "1.389e-4",
                         "--procs", "1", "--runs", "8", "--patterns", "32",
                         "--max-reps", "64", "--ci-rel-tol", "0.2",
                         "--threads", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::vector<std::string> lines = split_lines(r.out);
  const io::JsonValue plan = io::parse_json(lines.front());
  const io::JsonValue summary = io::parse_json(lines.back());
  ASSERT_GE(summary.at("replans").as_int(), 1);
  EXPECT_LT(summary.at("period").as_double(), plan.at("period").as_double());
}

// -- 3. The service front-end: subscribe == watch ------------------------

TEST(ReplanReplay, SubscribeRepliesWithTheExactWatchRecords) {
  const std::string trace = data_path("replay_weibull_shift.csv");
  const ToolRun watch = run(watch_args(trace, "1"));
  ASSERT_EQ(watch.code, 0) << watch.err;
  const std::vector<std::string> lines = split_lines(watch.out);
  ASSERT_GE(lines.size(), 3u);

  std::ostringstream req;
  req << R"({"op":"subscribe","id":1,"lambda":"2.78e-4",)"
      << R"("failure-dist":"weibull:k=0.7","procs":"1","runs":"8",)"
      << R"("patterns":"32","max-reps":"64","ci-rel-tol":"0.2",)";
  req << "\"telemetry\":\"" << io::json_escape(read_file(trace)) << "\"}";

  service::PlanningService service({/*threads=*/1});
  const std::string reply = service.handle_line(req.str());
  const io::JsonValue v = io::parse_json(reply);
  ASSERT_TRUE(v.at("ok").as_bool()) << reply;
  const io::JsonValue& result = v.at("result");
  EXPECT_EQ(result.at("events").as_int(), 1200);

  // Every plan/replan record `ayd watch` printed appears verbatim in the
  // reply (the records are spliced into the result unmodified), and the
  // counts line up. The summary record is the CLI's end-of-stream
  // framing and is deliberately absent from the one-shot reply.
  std::size_t watch_replans = 0;
  for (const std::string& line : lines) {
    const std::string type = record_type(line);
    if (type == "summary") continue;
    if (type == "replan") ++watch_replans;
    EXPECT_NE(reply.find(line), std::string::npos) << line;
  }
  EXPECT_EQ(result.at("replans").as_int(),
            static_cast<std::int64_t>(watch_replans));
  EXPECT_EQ(result.at("records").as_array().size(), lines.size() - 1);
}

TEST(ReplanReplay, SubscribeAcceptsInlineEventArrays) {
  service::PlanningService service({/*threads=*/1});
  const std::string reply = service.handle_line(
      R"({"op":"subscribe","id":2,"lambda":"2.78e-4","procs":"1",)"
      R"("runs":"8","patterns":"32","max-reps":"64","ci-rel-tol":"0.2",)"
      R"("events":[3600,1800,7200,3600,900,5400]})");
  const io::JsonValue v = io::parse_json(reply);
  ASSERT_TRUE(v.at("ok").as_bool()) << reply;
  const io::JsonValue& result = v.at("result");
  EXPECT_EQ(result.at("events").as_int(), 6);
  // Six events never reach the min-events warm-up: plan record only.
  EXPECT_EQ(result.at("replans").as_int(), 0);
  ASSERT_EQ(result.at("records").as_array().size(), 1u);
  EXPECT_EQ(result.at("records").as_array()[0].at("type").as_string(),
            "plan");
}

// -- Malformed telemetry: error envelopes, never a wedge -----------------

std::string error_code_of(const std::string& reply) {
  const io::JsonValue v = io::parse_json(reply);
  EXPECT_FALSE(v.at("ok").as_bool()) << reply;
  return v.at("error").at("code").as_string();
}

TEST(ReplanReplay, SubscribeMalformedTelemetryIsBadRequestNotAWedge) {
  service::PlanningService service({/*threads=*/1});
  const std::string prefix =
      R"({"op":"subscribe","id":3,"lambda":"2.78e-4","procs":"1",)"
      R"("runs":"8","patterns":"32","max-reps":"64",)";

  // A non-numeric gap value.
  const std::string bogus = service.handle_line(
      prefix + R"("telemetry":"gap_seconds\n3600\nbogus\n"})");
  EXPECT_EQ(error_code_of(bogus), "bad_request");
  EXPECT_NE(bogus.find("bad time value"), std::string::npos) << bogus;

  // Overflowing and non-finite literals are rejected the same way.
  EXPECT_EQ(error_code_of(service.handle_line(
                prefix + R"("telemetry":"gap_seconds\n1e999\n"})")),
            "bad_request");
  EXPECT_EQ(error_code_of(service.handle_line(
                prefix + R"("telemetry":"gap_seconds\nnan\n"})")),
            "bad_request");

  // Absolute timestamps running backwards.
  const std::string backwards = service.handle_line(
      prefix + R"("telemetry":"failure_time\n100\n250\n200\n"})");
  EXPECT_EQ(error_code_of(backwards), "bad_request");
  EXPECT_NE(backwards.find("non-decreasing"), std::string::npos) << backwards;

  // Wrong payload types.
  EXPECT_EQ(error_code_of(service.handle_line(
                prefix + R"("events":[3600,"oops"]})")),
            "bad_request");
  EXPECT_EQ(error_code_of(service.handle_line(
                prefix + R"("telemetry":42})")),
            "bad_request");

  // The service is still fully alive afterwards — no wedge.
  const io::JsonValue stats =
      io::parse_json(service.handle_line(R"({"op":"stats","id":9})"));
  EXPECT_TRUE(stats.at("ok").as_bool());
}

TEST(ReplanReplay, SubscribeNeedsExactlyOneTelemetrySource) {
  service::PlanningService service({/*threads=*/1});
  const std::string neither = service.handle_line(
      R"({"op":"subscribe","id":4,"procs":"1"})");
  EXPECT_EQ(error_code_of(neither), "bad_request");
  EXPECT_NE(neither.find("exactly one"), std::string::npos) << neither;
  const std::string both = service.handle_line(
      R"({"op":"subscribe","id":5,"procs":"1","events":[1],)"
      R"("telemetry":"gap_seconds\n1\n"})");
  EXPECT_EQ(error_code_of(both), "bad_request");
}

// -- Direct Replanner API guards -----------------------------------------

TEST(ReplanReplay, ReplannerEnforcesItsLifecycle) {
  const model::System sys =
      model::System::from_platform(model::hera(), model::Scenario::kS3)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7))
          .with_lambda(1.0 / 3600.0);
  service::ReplanOptions opts;
  opts.procs = 1.0;
  opts.search.replication.patterns_per_replica = 32;
  opts.search.adaptive.min_replicas = 8;
  opts.search.adaptive.max_replicas = 64;
  opts.search.adaptive.ci_rel_tol = 0.2;

  service::Replanner replanner(sys, opts, nullptr);
  // on_gap before the cold plan is a contract violation.
  EXPECT_THROW((void)replanner.on_gap(3600.0), util::Error);
  const std::string plan = replanner.initial_record();
  EXPECT_NE(plan.find("\"type\":\"plan\""), std::string::npos);
  // The cold plan runs exactly once.
  EXPECT_THROW((void)replanner.initial_record(), util::Error);
  EXPECT_GT(replanner.deployed_period(), 0.0);
  EXPECT_EQ(replanner.replans(), 0u);

  // procs is required.
  service::ReplanOptions bad = opts;
  bad.procs = 0.0;
  EXPECT_THROW(service::Replanner(sys, bad, nullptr), util::Error);
}

}  // namespace
}  // namespace ayd
