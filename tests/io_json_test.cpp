#include "ayd/io/json.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "ayd/util/error.hpp"

namespace ayd::io {
namespace {

TEST(JsonWriter, FlatObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "hera");
  w.kv("procs", std::int64_t{512});
  w.kv("lambda", 1.5);
  w.kv("ok", true);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"name":"hera","procs":512,"lambda":1.5,"ok":true})");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("series");
  w.begin_array();
  w.value(1.0);
  w.value(2.0);
  w.begin_object();
  w.kv("x", std::int64_t{3});
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"series":[1,2,{"x":3}]})");
}

TEST(JsonWriter, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value("line\nbreak \"quoted\" back\\slash \t");
  w.end_array();
  EXPECT_EQ(os.str(), "[\"line\\nbreak \\\"quoted\\\" back\\\\slash \\t\"]");
}

TEST(JsonWriter, ControlCharactersEscapedAsUnicode) {
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, ExplicitNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("missing");
  w.null();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"missing":null})");
}

TEST(JsonWriter, PrettyPrinting) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.kv("a", std::int64_t{1});
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, DoublePrecisionRoundTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(1.69e-8);
  w.end_array();
  const std::string out = os.str();
  const double parsed = std::stod(out.substr(1, out.size() - 2));
  EXPECT_DOUBLE_EQ(parsed, 1.69e-8);
}

TEST(JsonWriter, MisuseDetected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  // Value without key inside object:
  EXPECT_THROW(w.value(1.0), util::Error);
  w.key("k");
  // Two keys in a row:
  EXPECT_THROW(w.key("k2"), util::Error);
  w.value(1.0);
  // Mismatched close:
  EXPECT_THROW(w.end_array(), util::Error);
}

TEST(JsonWriter, KeyOutsideObjectRejected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  EXPECT_THROW(w.key("k"), util::Error);
}

}  // namespace
}  // namespace ayd::io
