// Adaptive replication driver: determinism (the replica *count*, not just
// the estimate, is a pure function of the inputs), tolerance compliance,
// and equivalence with a fixed-count run at the final count.

#include "ayd/sim/runner.hpp"

#include <gtest/gtest.h>

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/stats/ci.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {
namespace {

using model::Scenario;
using model::System;

System weibull_system() {
  return System::from_platform(model::hera(), Scenario::kS3)
      .with_failure_dist(model::FailureDistSpec::weibull(0.7));
}

ReplicationOptions quick_replication() {
  ReplicationOptions opt;
  opt.patterns_per_replica = 40;
  opt.seed = 0xADA77ULL;
  return opt;
}

AdaptiveOptions quick_adaptive() {
  AdaptiveOptions adapt;
  adapt.ci_rel_tol = 0.05;
  adapt.min_replicas = 8;
  adapt.max_replicas = 2048;
  return adapt;
}

const core::Pattern kPattern{6000.0, 512.0};

TEST(AdaptiveReplication, SameSeedAndToleranceGiveBitIdenticalRuns) {
  const System sys = weibull_system();
  const ReplicationResult a = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), quick_adaptive());
  const ReplicationResult b = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), quick_adaptive());
  EXPECT_EQ(a.overhead.count, b.overhead.count);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.overhead.mean, b.overhead.mean);        // bitwise
  EXPECT_EQ(a.overhead.stddev, b.overhead.stddev);    // bitwise
  EXPECT_EQ(a.overhead.ci.lo, b.overhead.ci.lo);
  EXPECT_EQ(a.overhead.ci.hi, b.overhead.ci.hi);
}

TEST(AdaptiveReplication, ThreadCountDoesNotChangeTheResult) {
  const System sys = weibull_system();
  const ReplicationResult serial = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), quick_adaptive());
  exec::ThreadPool pool(3);
  ReplicationScratch scratch;
  const ReplicationResult parallel = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), quick_adaptive(), &pool, &scratch);
  EXPECT_EQ(serial.overhead.count, parallel.overhead.count);
  EXPECT_EQ(serial.overhead.mean, parallel.overhead.mean);  // bitwise
  EXPECT_EQ(serial.rounds, parallel.rounds);
}

TEST(AdaptiveReplication, ConvergedRunsRespectTheRelativeTolerance) {
  const System sys = weibull_system();
  const AdaptiveOptions adapt = quick_adaptive();
  const ReplicationResult res = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), adapt);
  ASSERT_TRUE(res.ci_converged);
  EXPECT_LE(stats::relative_half_width(res.overhead.ci, res.overhead.mean),
            adapt.ci_rel_tol);
  EXPECT_GE(res.overhead.count, adapt.min_replicas);
  EXPECT_LE(res.overhead.count, adapt.max_replicas);
}

TEST(AdaptiveReplication, TighterToleranceNeedsMoreReplicas) {
  const System sys = weibull_system();
  AdaptiveOptions loose = quick_adaptive();
  loose.ci_rel_tol = 0.10;
  AdaptiveOptions tight = quick_adaptive();
  tight.ci_rel_tol = 0.02;
  const ReplicationResult l = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), loose);
  const ReplicationResult t = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), tight);
  EXPECT_LT(l.overhead.count, t.overhead.count);
  EXPECT_TRUE(t.ci_converged);
}

TEST(AdaptiveReplication, AgreesWithFixedCountRunAtTheFinalCount) {
  // Replicas are appended across rounds from substreams (seed, i), so
  // the adaptive estimate must equal a fixed run at the final count bit
  // for bit (the interval differs by construction: t vs normal theory).
  const System sys = weibull_system();
  const ReplicationResult adaptive = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), quick_adaptive());
  ReplicationOptions fixed = quick_replication();
  fixed.replicas = adaptive.overhead.count;
  const ReplicationResult reference =
      simulate_overhead(sys, kPattern, fixed);
  EXPECT_EQ(adaptive.overhead.mean, reference.overhead.mean);      // bitwise
  EXPECT_EQ(adaptive.overhead.stddev, reference.overhead.stddev);  // bitwise
  EXPECT_EQ(adaptive.total_patterns, reference.total_patterns);
  EXPECT_GT(adaptive.overhead.ci.half_width(),
            reference.overhead.ci.half_width());  // t wider than z
}

TEST(AdaptiveReplication, CapIsReportedAsNotConverged) {
  const System sys = weibull_system();
  AdaptiveOptions capped = quick_adaptive();
  capped.ci_rel_tol = 1e-9;  // unreachable
  capped.min_replicas = 4;
  capped.max_replicas = 16;
  const ReplicationResult res = simulate_overhead_adaptive(
      sys, kPattern, quick_replication(), capped);
  EXPECT_FALSE(res.ci_converged);
  EXPECT_EQ(res.overhead.count, 16u);
  EXPECT_GT(res.rounds, 1);
}

TEST(AdaptiveReplication, FixedDriverReportsVacuousConvergence) {
  const System sys = weibull_system();
  ReplicationOptions opt = quick_replication();
  opt.replicas = 8;
  const ReplicationResult res = simulate_overhead(sys, kPattern, opt);
  EXPECT_TRUE(res.ci_converged);
  EXPECT_EQ(res.rounds, 1);
}

TEST(AdaptiveReplication, RejectsInvalidOptions) {
  const System sys = weibull_system();
  AdaptiveOptions bad = quick_adaptive();
  bad.min_replicas = 1;
  EXPECT_THROW((void)simulate_overhead_adaptive(sys, kPattern,
                                                quick_replication(), bad),
               util::InvalidArgument);
  bad = quick_adaptive();
  bad.max_replicas = 4;
  bad.min_replicas = 8;
  EXPECT_THROW((void)simulate_overhead_adaptive(sys, kPattern,
                                                quick_replication(), bad),
               util::InvalidArgument);
  bad = quick_adaptive();
  bad.growth = 1.0;
  EXPECT_THROW((void)simulate_overhead_adaptive(sys, kPattern,
                                                quick_replication(), bad),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::sim
