#include "ayd/stats/summary.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "ayd/util/error.hpp"

namespace ayd::stats {
namespace {

TEST(NormalQuantileStats, StandardValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.96, 0.001);
  EXPECT_NEAR(normal_quantile(0.995), 2.576, 0.001);
}

TEST(MeanCi, WidthMatchesLevel) {
  const auto ci95 = mean_ci(10.0, 0.5, 0.95);
  EXPECT_NEAR(ci95.lo, 10.0 - 1.96 * 0.5, 0.01);
  EXPECT_NEAR(ci95.hi, 10.0 + 1.96 * 0.5, 0.01);
  EXPECT_TRUE(ci95.contains(10.0));
  const auto ci99 = mean_ci(10.0, 0.5, 0.99);
  EXPECT_GT(ci99.half_width(), ci95.half_width());
}

TEST(MeanCi, RejectsBadInput) {
  EXPECT_THROW((void)mean_ci(0.0, 1.0, 0.0), util::InvalidArgument);
  EXPECT_THROW((void)mean_ci(0.0, 1.0, 1.0), util::InvalidArgument);
  EXPECT_THROW((void)mean_ci(0.0, -1.0, 0.95), util::InvalidArgument);
}

TEST(Summarize, FromSpan) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_TRUE(s.ci.contains(3.0));
}

TEST(Summarize, MatchesRunningStats) {
  RunningStats r;
  const std::vector<double> xs{0.11, 0.12, 0.105, 0.118, 0.109};
  for (const double x : xs) r.add(x);
  const Summary a = summarize(r);
  const Summary b = summarize(xs);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stderr_mean, b.stderr_mean);
}

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, Preconditions) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile({}, 0.5), util::InvalidArgument);
  EXPECT_THROW((void)quantile(xs, 1.5), util::InvalidArgument);
}

TEST(LinearFit, ExactOnLinearData) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(-0.25 * x + 3.0);
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, -0.25, 1e-12);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, RecoversLogLogExponent) {
  // y = k * x^{-1/3}: slope of log y vs log x is -1/3 — exactly the
  // asymptotic-order fitting done for Figure 5.
  std::vector<double> lx, ly;
  for (const double x : {1e-12, 1e-11, 1e-10, 1e-9, 1e-8}) {
    lx.push_back(std::log10(x));
    ly.push_back(std::log10(7.3 * std::pow(x, -1.0 / 3.0)));
  }
  const LinearFit f = linear_fit(lx, ly);
  EXPECT_NEAR(f.slope, -1.0 / 3.0, 1e-9);
}

TEST(LinearFit, NoisyDataRSquaredBelowOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{1.1, 1.9, 3.2, 3.8, 5.3};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_GT(f.r_squared, 0.95);
  EXPECT_LT(f.r_squared, 1.0);
}

TEST(LinearFit, Preconditions) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)linear_fit(one, one), util::InvalidArgument);
  const std::vector<double> constant{1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)linear_fit(constant, ys), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::stats
