#include "ayd/math/integrate.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::math {
namespace {

TEST(Integrate, PolynomialIsExact) {
  // Simpson is exact on cubics.
  const auto r = integrate(
      [](double x) { return x * x * x - 2.0 * x + 1.0; }, -1.0, 3.0);
  // Antiderivative: x^4/4 - x^2 + x.
  const double expected = (81.0 / 4.0 - 9.0 + 3.0) - (0.25 - 1.0 - 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, expected, 1e-10);
}

TEST(Integrate, Exponential) {
  const auto r = integrate([](double x) { return std::exp(-x); }, 0.0, 10.0);
  EXPECT_NEAR(r.value, 1.0 - std::exp(-10.0), 1e-9);
}

TEST(Integrate, OscillatoryNeedsAdaptivity) {
  const auto r =
      integrate([](double x) { return std::sin(10.0 * x); }, 0.0, M_PI);
  EXPECT_NEAR(r.value, (1.0 - std::cos(10.0 * M_PI)) / 10.0, 1e-8);
  EXPECT_GT(r.evaluations, 20);  // must have subdivided
}

TEST(Integrate, EmptyInterval) {
  const auto r = integrate([](double x) { return x; }, 2.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Integrate, RejectsReversedBounds) {
  EXPECT_THROW((void)integrate([](double x) { return x; }, 2.0, 1.0),
               util::InvalidArgument);
}

TEST(Integrate, SharpPeakConverges) {
  // Narrow Gaussian integrates to ~sqrt(pi)*width.
  const double w = 1e-3;
  const auto r = integrate(
      [w](double x) { return std::exp(-(x * x) / (w * w)); }, -1.0, 1.0);
  EXPECT_NEAR(r.value, std::sqrt(M_PI) * w, 1e-8);
}

TEST(Integrate, ErrorEstimateBoundsTrueError) {
  const auto f = [](double x) { return std::exp(x) * std::sin(3.0 * x); };
  // Antiderivative: e^x (sin 3x - 3 cos 3x)/10.
  const auto F = [](double x) {
    return std::exp(x) * (std::sin(3.0 * x) - 3.0 * std::cos(3.0 * x)) / 10.0;
  };
  const auto r = integrate(f, 0.0, 2.0);
  const double truth = F(2.0) - F(0.0);
  EXPECT_NEAR(r.value, truth, 1e-8);
  EXPECT_LE(std::abs(r.value - truth), std::max(r.error_estimate, 1e-10));
}

class ExponentialMoments : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMoments, MeanOfExponentialDensity) {
  // ∫ t λ e^{-λt} dt over [0, ∞) = 1/λ; truncate at 50/λ.
  const double lambda = GetParam();
  const auto r = integrate(
      [lambda](double t) { return t * lambda * std::exp(-lambda * t); }, 0.0,
      50.0 / lambda);
  EXPECT_NEAR(r.value, 1.0 / lambda, 1e-6 / lambda);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialMoments,
                         ::testing::Values(0.01, 0.5, 1.0, 7.0, 100.0));

}  // namespace
}  // namespace ayd::math
