// End-to-end tests of the planning service: NDJSON protocol round-trips
// (error envelopes, id correlation, out-of-order completion), cache
// semantics at the service level (spelling-invariant keys, warm-hit
// replies byte-identical to cold-miss, --cache-entries eviction,
// single-flight under 8 threads), and the headline equivalence contract:
// a served "optimize" result is value-identical to the one-shot
// `ayd optimize --json` record for the same spec.

#include "ayd/service/server.hpp"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ayd/io/json.hpp"
#include "ayd/io/json_parse.hpp"
#include "ayd/service/protocol.hpp"
#include "ayd/service/shm_transport.hpp"
#include "ayd/tool/tool.hpp"

namespace ayd::service {
namespace {

/// Canonical compact re-serialisation (strips formatting differences;
/// double values round-trip exactly through %.17g, so equality below is
/// value equality bit for bit).
std::string compact(const io::JsonValue& v) {
  std::ostringstream os;
  io::JsonWriter w(os, /*pretty=*/false);
  v.write(w);
  return os.str();
}

std::string compact(const std::string& json) {
  return compact(io::parse_json(json));
}

// A cheap but real simulated-optimizer request (Weibull arrivals force
// the simulation path; small caps keep the test fast).
const char* kSimulateParams =
    R"("procs":512,"failure-dist":"weibull:k=0.7","simulate":true,)"
    R"("runs":8,"patterns":20,"max-reps":32,"ci-rel-tol":0.05)";

std::string optimize_request(int id, const std::string& params) {
  return "{\"op\":\"optimize\",\"id\":" + std::to_string(id) + "," + params +
         "}";
}

// -- protocol round-trip -------------------------------------------------

TEST(ServiceProtocol, MalformedLineYieldsParseErrorReply) {
  PlanningService service({/*threads=*/1});
  const std::string reply = service.handle_line("this is not json");
  const io::JsonValue v = io::parse_json(reply);
  EXPECT_TRUE(v.at("id").is_null());
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "parse_error");
}

TEST(ServiceProtocol, NonObjectAndMissingOpAreRejected) {
  PlanningService service({/*threads=*/1});
  EXPECT_EQ(io::parse_json(service.handle_line("[1,2,3]"))
                .at("error").at("code").as_string(),
            "parse_error");
  // A missing (or non-string) op still echoes the request's id — the
  // client must be able to correlate the failure.
  const io::JsonValue missing_op =
      io::parse_json(service.handle_line(R"({"id":9})"));
  EXPECT_EQ(missing_op.at("error").at("code").as_string(), "bad_request");
  EXPECT_EQ(missing_op.at("id").as_int(), 9);
  EXPECT_EQ(io::parse_json(service.handle_line(R"({"op":5,"id":11})"))
                .at("id").as_int(),
            11);
}

TEST(ServiceProtocol, ParameterNamesWithEqualsAreRejected) {
  // {"procs=512": true} must not be spliced into the argv form
  // --procs=512 (a parameter the client never set).
  PlanningService service({/*threads=*/1});
  const io::JsonValue v = io::parse_json(
      service.handle_line(R"({"op":"optimize","id":1,"procs=512":true})"));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(v.at("error").at("message").as_string().find("procs=512"),
            std::string::npos);
}

TEST(ServiceProtocol, UnknownOpEchoesIdWithUnknownOpCode) {
  PlanningService service({/*threads=*/1});
  const io::JsonValue v =
      io::parse_json(service.handle_line(R"({"op":"frobnicate","id":17})"));
  EXPECT_EQ(v.at("id").as_int(), 17);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "unknown_op");
  EXPECT_NE(v.at("error").at("message").as_string().find("frobnicate"),
            std::string::npos);
}

TEST(ServiceProtocol, UnknownParameterIsABadRequest) {
  PlanningService service({/*threads=*/1});
  const io::JsonValue v = io::parse_json(
      service.handle_line(R"({"op":"optimize","id":1,"bogus-knob":3})"));
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "bad_request");
}

TEST(ServiceProtocol, NonScalarParameterIsABadRequest) {
  PlanningService service({/*threads=*/1});
  const io::JsonValue v = io::parse_json(
      service.handle_line(R"({"op":"optimize","id":1,"procs":[512]})"));
  EXPECT_EQ(v.at("error").at("code").as_string(), "bad_request");
}

TEST(ServiceProtocol, StringAndNumberIdsEchoVerbatim) {
  PlanningService service({/*threads=*/1});
  const std::string num = service.handle_line(
      R"({"op":"plan","id":42,"platform":"hera","scenario":3})");
  EXPECT_EQ(num.rfind("{\"id\":42,", 0), 0u) << num;
  const std::string str = service.handle_line(
      R"({"op":"plan","id":"req-a","platform":"hera","scenario":3})");
  EXPECT_EQ(str.rfind("{\"id\":\"req-a\",", 0), 0u) << str;
}

TEST(ServiceProtocol, OkReplyCarriesOpAndResult) {
  PlanningService service({/*threads=*/1});
  const io::JsonValue v = io::parse_json(service.handle_line(
      R"({"op":"simulate","id":5,"procs":512,"period":6000,)"
      R"("runs":6,"patterns":10})"));
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("op").as_string(), "simulate");
  const io::JsonValue& result = v.at("result");
  EXPECT_DOUBLE_EQ(result.at("procs").as_double(), 512.0);
  EXPECT_DOUBLE_EQ(result.at("period").as_double(), 6000.0);
  EXPECT_GT(result.at("overhead").at("mean").as_double(), 0.0);
  EXPECT_GT(result.at("analytic_overhead").as_double(), 0.0);
}

TEST(ServiceProtocol, ServeAnswersEveryRequestOutOfOrderSafe) {
  // serve() may reply in any order; ids are the correlation handle. A
  // multi-worker pool plus one malformed line exercises the envelope on
  // the same session.
  PlanningService service({/*threads=*/4});
  std::ostringstream session;
  for (int id = 1; id <= 6; ++id) {
    session << R"({"op":"plan","id":)" << id
            << R"(,"platform":"hera","scenario":3,"work":)" << id * 1e6
            << "}\n";
  }
  session << "garbage line\n";
  std::istringstream in(session.str());
  std::ostringstream out;
  EXPECT_TRUE(service.serve(in, out));

  std::set<std::int64_t> ids;
  int errors = 0;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) {
    const io::JsonValue v = io::parse_json(line);
    if (v.at("ok").as_bool()) {
      ids.insert(v.at("id").as_int());
    } else {
      ++errors;
      EXPECT_EQ(v.at("error").at("code").as_string(), "parse_error");
    }
  }
  EXPECT_EQ(ids, (std::set<std::int64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(errors, 1);
}

TEST(ServiceProtocol, ServeProcessesFinalUnterminatedLine) {
  // A client that omits the trailing '\n' on its last request (common
  // when the writer is killed, or with `printf '%s'`) still gets a
  // reply: EOF terminates the line.
  PlanningService service({/*threads=*/1});
  std::istringstream in(
      R"({"op":"plan","id":7,"platform":"hera","scenario":3,"work":1e6})");
  std::ostringstream out;
  EXPECT_TRUE(service.serve(in, out));
  const io::JsonValue v = io::parse_json(out.str());
  EXPECT_EQ(v.at("id").as_int(), 7);
  EXPECT_TRUE(v.at("ok").as_bool());
}

TEST(ServiceProtocol, ServeReturnsFalseAndStopsReadingOnDeadOutput) {
  // When the reply stream dies (client closed the pipe; cmd_serve turns
  // SIGPIPE into a stream failure), serve() must report the failure and
  // stop consuming input instead of draining stdin forever while every
  // reply is discarded.
  PlanningService service({/*threads=*/1});
  std::ostringstream session;
  for (int id = 1; id <= 500; ++id) {
    session << R"({"op":"stats","id":)" << id << "}\n";
  }
  std::istringstream in(session.str());
  std::ostringstream out;
  out.setstate(std::ios::badbit);  // every write fails, like a closed pipe
  EXPECT_FALSE(service.serve(in, out));
  // The reader bailed early: most of the session is still unread (the
  // backpressure window bounds how far ahead it got).
  std::string leftover;
  int unread = 0;
  in.clear();
  while (std::getline(in, leftover)) ++unread;
  EXPECT_GT(unread, 300);
}

// -- malformed / truncated frames, via both transports -------------------

// The frame battery: every entry is one broken request line — cut off
// mid-token, structurally invalid, or semantically wrong — paired with
// the error code its envelope must carry. Shared by the pipe and shm
// transport robustness tests below so the two byte channels are held to
// the same contract.
const std::vector<std::pair<const char*, const char*>>& broken_frames() {
  static const std::vector<std::pair<const char*, const char*>> kFrames = {
      {R"({"op":"plan","id":1,"pla)", "parse_error"},      // truncated mid-key
      {R"({"op":"plan","id":1,"work":1e)", "parse_error"},  // truncated number
      {R"({"op":"plan","id":1)", "parse_error"},            // missing brace
      {"\x01\x02binary\xff", "parse_error"},                // not JSON at all
      {R"("just a string")", "parse_error"},                // non-object
      {R"({})", "bad_request"},                             // no op at all
      {R"({"op":"plan","id":9,"work":{"nested":1}})",
       "bad_request"},                                      // non-scalar param
  };
  return kFrames;
}

TEST(ServiceProtocol, BrokenFramesOverPipeYieldEnvelopesAndNeverWedge) {
  PlanningService service({/*threads=*/2});
  std::ostringstream session;
  for (const auto& [frame, code] : broken_frames()) {
    session << frame << "\n";
  }
  // A valid request after the battery proves the session survived.
  session << R"({"op":"stats","id":"alive"})" << "\n";
  std::istringstream in(session.str());
  std::ostringstream out;
  EXPECT_TRUE(service.serve(in, out));

  int envelopes = 0;
  bool alive_answered = false;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) {
    const io::JsonValue v = io::parse_json(line);  // replies stay valid JSON
    if (!v.at("ok").as_bool()) {
      ++envelopes;
      EXPECT_FALSE(v.at("error").at("message").as_string().empty());
    } else if (v.at("id").as_string() == "alive") {
      alive_answered = true;
    }
  }
  EXPECT_EQ(envelopes, static_cast<int>(broken_frames().size()));
  EXPECT_TRUE(alive_answered);
}

TEST(ServiceProtocol, BrokenFramesOverShmYieldTheSameEnvelopesAsThePipe) {
  PlanningService service({/*threads=*/2});
  ShmServer server("proto" + std::to_string(::getpid()), service);
  ShmClient client(server.name());
  for (const auto& [frame, code] : broken_frames()) {
    // The documented envelope, byte-identical to the pipe transport's
    // reply for the same broken frame, with the declared code.
    const std::string reply = client.call(frame);
    EXPECT_EQ(reply, service.handle_line(frame)) << frame;
    const io::JsonValue v = io::parse_json(reply);
    EXPECT_FALSE(v.at("ok").as_bool()) << frame;
    EXPECT_EQ(v.at("error").at("code").as_string(), code) << frame;
    // The session never wedges: a valid round trip follows every freak.
    EXPECT_NE(client.call(R"({"op":"stats","id":1})").find("\"ok\":true"),
              std::string::npos);
  }
}

// -- cache semantics -----------------------------------------------------

TEST(ServiceCacheSemantics, WarmHitReplyIsByteIdenticalToColdMiss) {
  PlanningService service({/*threads=*/1});
  const std::string request = optimize_request(7, kSimulateParams);
  const std::string cold = service.handle_line(request);
  const std::string warm = service.handle_line(request);
  EXPECT_EQ(cold, warm);
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ServiceCacheSemantics, SpellingAndOrderInvariantKeys) {
  PlanningService service({/*threads=*/1});
  // Same scenario four ways: member order, case, string-vs-number,
  // underscore-vs-hyphen, defaults passed explicitly.
  const std::vector<std::string> spellings = {
      R"({"op":"optimize","id":1,"platform":"hera","scenario":3})",
      R"({"op":"optimize","id":1,"scenario":"3","platform":"HERA"})",
      R"({"op":"optimize","id":1,"platform":"Hera","scenario":3,)"
      R"("alpha":0.1,"downtime":3600})",
      R"({"op":"optimize","id":1,"max_procs":1e7,"platform":"hera",)"
      R"("scenario":3})",
  };
  std::vector<std::string> replies;
  for (const std::string& req : spellings) {
    replies.push_back(service.handle_line(req));
  }
  for (const std::string& r : replies) EXPECT_EQ(r, replies.front());
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(ServiceCacheSemantics, DistinctScenariosDoNotCollide) {
  PlanningService service({/*threads=*/1});
  (void)service.handle_line(
      R"({"op":"optimize","id":1,"platform":"hera","scenario":3})");
  (void)service.handle_line(
      R"({"op":"optimize","id":2,"platform":"hera","scenario":1})");
  (void)service.handle_line(
      R"({"op":"optimize","id":3,"platform":"atlas","scenario":3})");
  EXPECT_EQ(service.cache_stats().misses, 3u);
  EXPECT_EQ(service.cache_stats().hits, 0u);
}

TEST(ServiceCacheSemantics, EvictionRespectsCacheEntries) {
  ServiceOptions options;
  options.threads = 1;
  options.cache_entries = 2;
  options.cache_shards = 1;
  PlanningService service(options);
  for (int scenario : {1, 2, 3, 4}) {
    (void)service.handle_line(
        R"({"op":"optimize","id":1,"platform":"hera","scenario":)" +
        std::to_string(scenario) + "}");
  }
  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  // Scenario 1 was evicted: repeating it recomputes (a miss, not a hit).
  (void)service.handle_line(
      R"({"op":"optimize","id":1,"platform":"hera","scenario":1})");
  EXPECT_EQ(service.cache_stats().misses, 5u);
}

TEST(ServiceCacheSemantics, SingleFlightUnderEightThreads) {
  PlanningService service({/*threads=*/1});
  const std::string request = optimize_request(1, kSimulateParams);
  std::vector<std::thread> threads;
  std::vector<std::string> replies(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      replies[static_cast<std::size_t>(t)] = service.handle_line(request);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& r : replies) EXPECT_EQ(r, replies.front());
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, 7u);
}

TEST(ServiceCacheSemantics, StatsOpReportsCounters) {
  PlanningService service({/*threads=*/1});
  const std::string request = optimize_request(1, kSimulateParams);
  (void)service.handle_line(request);
  (void)service.handle_line(request);
  const io::JsonValue v =
      io::parse_json(service.handle_line(R"({"op":"stats","id":99})"));
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("result").at("misses").as_int(), 1);
  EXPECT_EQ(v.at("result").at("hits").as_int(), 1);
  EXPECT_EQ(v.at("result").at("entries").as_int(), 1);
  // Stats itself is never cached.
  EXPECT_EQ(io::parse_json(service.handle_line(R"({"op":"stats","id":1})"))
                .at("result").at("misses").as_int(),
            1);
}

// -- equivalence with the one-shot CLI -----------------------------------

TEST(ServiceEquivalence, OptimizeResultMatchesOneShotJsonRecord) {
  // The same spec through `ayd optimize --json` (pretty) and the service
  // (compact): after canonical compact re-serialisation the two records
  // must be byte-identical — every double, CI bound and replica count.
  std::ostringstream out;
  std::ostringstream err;
  const int code = tool::run_tool(
      {"optimize", "--json", "--procs", "512", "--failure-dist",
       "weibull:k=0.7", "--simulate", "--runs", "8", "--patterns", "20",
       "--max-reps", "32", "--ci-rel-tol", "0.05"},
      out, err);
  ASSERT_EQ(code, 0) << err.str();
  const std::string one_shot = compact(out.str());

  PlanningService service({/*threads=*/1});
  const io::JsonValue reply =
      io::parse_json(service.handle_line(optimize_request(1, kSimulateParams)));
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(compact(reply.at("result")), one_shot);
}

TEST(ServiceEquivalence, AnalyticOptimizeMatchesOneShotToo) {
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(tool::run_tool({"optimize", "--json", "--platform", "coastal",
                            "--scenario", "5"},
                           out, err),
            0);
  PlanningService service({/*threads=*/1});
  const io::JsonValue reply = io::parse_json(service.handle_line(
      R"({"op":"optimize","id":1,"platform":"coastal","scenario":5})"));
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(compact(reply.at("result")), compact(out.str()));
}

}  // namespace
}  // namespace ayd::service
