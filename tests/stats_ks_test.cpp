#include "ayd/stats/ks.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "ayd/rng/distributions.hpp"
#include "ayd/rng/xoshiro256.hpp"
#include "ayd/util/error.hpp"

namespace ayd::stats {
namespace {

std::vector<double> exponential_sample(double rate, int n,
                                       std::uint64_t seed) {
  rng::Xoshiro256 eng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = rng::exponential(eng, rate);
  return xs;
}

TEST(KsTest, AcceptsCorrectDistribution) {
  const auto xs = exponential_sample(2.0, 5000, 42);
  const auto r =
      ks_test(xs, [](double x) { return exponential_cdf(x, 2.0); });
  EXPECT_GT(r.p_value, 0.001);
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_EQ(r.n, 5000u);
}

TEST(KsTest, RejectsWrongRate) {
  const auto xs = exponential_sample(2.0, 5000, 43);
  const auto r =
      ks_test(xs, [](double x) { return exponential_cdf(x, 1.0); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, RejectsWrongFamily) {
  const auto xs = exponential_sample(1.0, 5000, 44);
  const auto r =
      ks_test(xs, [](double x) { return uniform_cdf(x, 0.0, 5.0); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, PerfectFitOnQuantileGrid) {
  // Deterministic sample at uniform quantiles: D_n = 1/(2n) (minimal).
  std::vector<double> xs;
  const int n = 100;
  for (int i = 0; i < n; ++i) xs.push_back((i + 0.5) / n);
  const auto r = ks_test(xs, [](double x) { return uniform_cdf(x, 0.0, 1.0); });
  EXPECT_NEAR(r.statistic, 0.5 / n, 1e-12);
  EXPECT_GT(r.p_value, 0.999);
}

TEST(KsTest, EmptySampleRejected) {
  EXPECT_THROW((void)ks_test({}, [](double) { return 0.5; }),
               util::InvalidArgument);
}

TEST(KsTest, CdfRangeValidated) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)ks_test(xs, [](double) { return 1.5; }),
               util::InvalidArgument);
}

TEST(ExponentialCdf, Values) {
  EXPECT_DOUBLE_EQ(exponential_cdf(-1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_cdf(0.0, 2.0), 0.0);
  EXPECT_NEAR(exponential_cdf(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-15);
  EXPECT_THROW((void)exponential_cdf(1.0, 0.0), util::InvalidArgument);
}

TEST(UniformCdf, Values) {
  EXPECT_DOUBLE_EQ(uniform_cdf(-1.0, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(uniform_cdf(0.5, 0.0, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(uniform_cdf(3.0, 0.0, 2.0), 1.0);
  EXPECT_THROW((void)uniform_cdf(0.0, 2.0, 1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::stats
