// Batched RNG: bulk fills must be bit-identical to the equivalent scalar
// call sequences, and VariateBlock must be a pure prefetch (same values,
// same order, refill only when drained).

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/rng/block.hpp"
#include "ayd/rng/stream.hpp"

namespace ayd::rng {
namespace {

TEST(RngBlock, FillU64MatchesScalarDraws) {
  for (std::uint64_t seed : {0ULL, 1ULL, 0xDEADBEEFULL}) {
    RngStream scalar(seed), bulk(seed);
    std::array<std::uint64_t, 257> out{};  // odd size: no alignment luck
    bulk.fill_u64(out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], scalar.next_u64()) << "word " << i;
    }
    // Streams end at the same position.
    EXPECT_EQ(bulk.next_u64(), scalar.next_u64());
  }
}

TEST(RngBlock, FillUniform01MatchesScalarDraws) {
  for (std::uint64_t seed : {7ULL, 42ULL}) {
    RngStream scalar(seed), bulk(seed);
    std::array<double, 129> out{};
    bulk.fill_uniform01(out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], scalar.next_uniform01()) << "draw " << i;
    }
    EXPECT_EQ(bulk.next_uniform01(), scalar.next_uniform01());
  }
}

TEST(RngBlock, VariateBlockIsAPurePrefetch) {
  RngStream scalar(99), blocked(99);
  VariateBlock block;
  int refills = 0;
  const auto refill = [&](double* out, std::size_t n) {
    ++refills;
    blocked.fill_uniform01(out, n);
  };
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(block.next(refill), scalar.next_uniform01()) << "draw " << i;
  }
  // 1000 draws over blocks of kVariateBlockSize.
  EXPECT_EQ(refills,
            static_cast<int>((1000 + kVariateBlockSize - 1) /
                             kVariateBlockSize));
}

TEST(RngBlock, ResetDiscardsBufferedVariates) {
  RngStream rng(5);
  VariateBlock block;
  const auto refill = [&](double* out, std::size_t n) {
    rng.fill_uniform01(out, n);
  };
  (void)block.next(refill);
  EXPECT_EQ(block.buffered(), kVariateBlockSize - 1);
  block.reset();
  EXPECT_EQ(block.buffered(), 0u);
  // After reset the next draw comes from the *current* stream position,
  // not from stale buffered values.
  RngStream expect(5);
  std::vector<double> first(kVariateBlockSize);
  expect.fill_uniform01(first.data(), first.size());
  const double next = block.next(refill);
  EXPECT_EQ(next, expect.next_uniform01());
}

}  // namespace
}  // namespace ayd::rng
