#include "ayd/rng/distributions.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "ayd/rng/xoshiro256.hpp"
#include "ayd/stats/ks.hpp"
#include "ayd/stats/running.hpp"
#include "ayd/util/error.hpp"

namespace ayd::rng {
namespace {

constexpr int kSamples = 20000;

TEST(Uniform01, RangeAndMoments) {
  Xoshiro256 eng(42);
  stats::RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    const double u = uniform01(eng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Uniform01, PassesKsAgainstUniformCdf) {
  Xoshiro256 eng(7);
  std::vector<double> xs(kSamples);
  for (double& x : xs) x = uniform01(eng);
  const auto ks = stats::ks_test(
      xs, [](double x) { return stats::uniform_cdf(x, 0.0, 1.0); });
  EXPECT_GT(ks.p_value, 1e-3) << "D=" << ks.statistic;
}

TEST(Uniform01OpenLow, NeverZero) {
  Xoshiro256 eng(11);
  for (int i = 0; i < kSamples; ++i) {
    const double u = uniform01_open_low(eng);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(UniformRange, RespectsBounds) {
  Xoshiro256 eng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = uniform(eng, -5.0, 2.5);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 2.5);
  }
  EXPECT_THROW((void)uniform(eng, 1.0, 1.0), util::InvalidArgument);
}

class ExponentialRate : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialRate, MeanVarianceAndKs) {
  const double rate = GetParam();
  Xoshiro256 eng(1234);
  std::vector<double> xs(kSamples);
  stats::RunningStats s;
  for (double& x : xs) {
    x = exponential(eng, rate);
    ASSERT_GT(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 1.0 / rate, 4.0 / (rate * std::sqrt(1.0 * kSamples)));
  EXPECT_NEAR(s.stddev(), 1.0 / rate, 0.1 / rate);
  const auto ks = stats::ks_test(
      xs, [rate](double x) { return stats::exponential_cdf(x, rate); });
  EXPECT_GT(ks.p_value, 1e-3) << "rate=" << rate << " D=" << ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialRate,
                         ::testing::Values(1e-6, 0.01, 1.0, 250.0));

TEST(Exponential, ZeroRateYieldsInfinity) {
  Xoshiro256 eng(9);
  EXPECT_TRUE(std::isinf(exponential(eng, 0.0)));
}

TEST(Exponential, NegativeRateRejected) {
  Xoshiro256 eng(9);
  EXPECT_THROW((void)exponential(eng, -1.0), util::InvalidArgument);
}

TEST(Bernoulli, FrequencyMatchesP) {
  Xoshiro256 eng(21);
  int hits = 0;
  const double p = 0.3;
  for (int i = 0; i < kSamples; ++i) hits += bernoulli(eng, p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.02);
}

TEST(Bernoulli, DegenerateProbabilities) {
  Xoshiro256 eng(22);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(eng, 0.0));
    EXPECT_TRUE(bernoulli(eng, 1.0));
  }
  EXPECT_THROW((void)bernoulli(eng, 1.5), util::InvalidArgument);
}

TEST(UniformIndex, BoundsAndCoverage) {
  Xoshiro256 eng(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < kSamples; ++i) {
    const auto k = uniform_index(eng, 7);
    ASSERT_LT(k, 7u);
    ++counts[static_cast<std::size_t>(k)];
  }
  // Each bucket should be near kSamples/7 (loose 5-sigma-ish bound).
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / 7.0, 5.0 * std::sqrt(kSamples / 7.0));
  }
  EXPECT_THROW((void)uniform_index(eng, 0), util::InvalidArgument);
}

TEST(Normal, MomentsAndSymmetry) {
  Xoshiro256 eng(31);
  stats::RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.add(normal(eng, 2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(detail::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(detail::normal_quantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(detail::normal_quantile(0.025), -1.959963984540054, 1e-7);
  EXPECT_NEAR(detail::normal_quantile(0.8413447460685429), 1.0, 1e-6);
  EXPECT_THROW((void)detail::normal_quantile(0.0), util::InvalidArgument);
  EXPECT_THROW((void)detail::normal_quantile(1.0), util::InvalidArgument);
}

class PoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMean, MeanAndVariance) {
  const double mean = GetParam();
  Xoshiro256 eng(77);
  stats::RunningStats s;
  for (int i = 0; i < kSamples; ++i) {
    s.add(static_cast<double>(poisson(eng, mean)));
  }
  const double tol = 5.0 * std::sqrt(mean / kSamples) + 0.01;
  EXPECT_NEAR(s.mean(), mean, tol);
  EXPECT_NEAR(s.variance(), mean, 0.1 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMean,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 100.0));

TEST(Poisson, ZeroMeanIsZero) {
  Xoshiro256 eng(5);
  EXPECT_EQ(poisson(eng, 0.0), 0u);
}

}  // namespace
}  // namespace ayd::rng
