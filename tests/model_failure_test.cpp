#include "ayd/model/failure.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "ayd/util/error.hpp"
#include "ayd/util/units.hpp"

namespace ayd::model {
namespace {

TEST(FailureModel, RatesScaleLinearlyWithP) {
  const FailureModel fm(1.69e-8, 0.2188);
  EXPECT_DOUBLE_EQ(fm.fail_stop_rate(1.0), 0.2188 * 1.69e-8);
  EXPECT_DOUBLE_EQ(fm.fail_stop_rate(512.0), 0.2188 * 1.69e-8 * 512.0);
  EXPECT_DOUBLE_EQ(fm.silent_rate(512.0), 0.7812 * 1.69e-8 * 512.0);
  EXPECT_DOUBLE_EQ(fm.total_rate(512.0),
                   fm.fail_stop_rate(512.0) + fm.silent_rate(512.0));
}

TEST(FailureModel, FractionsSumToOne) {
  const FailureModel fm(1e-8, 0.3);
  EXPECT_DOUBLE_EQ(fm.fail_stop_fraction() + fm.silent_fraction(), 1.0);
}

TEST(FailureModel, MtbfReciprocal) {
  const FailureModel fm(2e-9, 0.5);
  EXPECT_DOUBLE_EQ(fm.mtbf_ind(), 5e8);
  EXPECT_DOUBLE_EQ(fm.platform_mtbf(1000.0), 5e5);
}

TEST(FailureModel, CenturyMtbfPlatformExample) {
  // The introduction's example: a one-century MTBF per node gives a
  // 100,000-node machine a platform MTBF of ~9 hours.
  const FailureModel fm = FailureModel::from_mtbf(util::years(100.0), 1.0);
  const double platform_mtbf = fm.platform_mtbf(100000.0);
  EXPECT_NEAR(util::to_hours(platform_mtbf), 8.77, 0.05);
}

TEST(FailureModel, ErrorFree) {
  const FailureModel fm = FailureModel::error_free();
  EXPECT_DOUBLE_EQ(fm.fail_stop_rate(1e6), 0.0);
  EXPECT_DOUBLE_EQ(fm.silent_rate(1e6), 0.0);
  EXPECT_TRUE(std::isinf(fm.mtbf_ind()));
  EXPECT_TRUE(std::isinf(fm.platform_mtbf(512.0)));
}

TEST(FailureModel, WeightedLambda) {
  // (f/2 + s)·λ with f = 0.2, s = 0.8: weight 0.9.
  const FailureModel fm(1e-8, 0.2);
  EXPECT_NEAR(fm.weighted_lambda(), 0.9e-8, 1e-20);
  // All-fail-stop gives λ/2 (the classic Young/Daly halving).
  const FailureModel fs(1e-8, 1.0);
  EXPECT_NEAR(fs.weighted_lambda(), 0.5e-8, 1e-20);
  // All-silent gives λ (no halving: errors waste the full period).
  const FailureModel si(1e-8, 0.0);
  EXPECT_NEAR(si.weighted_lambda(), 1e-8, 1e-20);
}

TEST(FailureModel, WithLambdaPreservesFraction) {
  const FailureModel fm(1e-8, 0.25);
  const FailureModel scaled = fm.with_lambda(1e-10);
  EXPECT_DOUBLE_EQ(scaled.lambda_ind(), 1e-10);
  EXPECT_DOUBLE_EQ(scaled.fail_stop_fraction(), 0.25);
}

TEST(FailureModel, DefaultsToExponentialArrivals) {
  const FailureModel fm(1e-8, 0.25);
  EXPECT_EQ(fm.dist().kind(), FailureDistKind::kExponential);
  EXPECT_TRUE(fm.dist().memoryless());
}

TEST(FailureModel, WithLambdaAndWithDistPreserveEachOther) {
  const FailureModel fm =
      FailureModel(1e-8, 0.25).with_dist(FailureDistSpec::weibull(0.7));
  EXPECT_EQ(fm.dist().kind(), FailureDistKind::kWeibull);
  const FailureModel scaled = fm.with_lambda(1e-10);
  EXPECT_EQ(scaled.dist(), fm.dist());
  EXPECT_DOUBLE_EQ(scaled.lambda_ind(), 1e-10);
  EXPECT_DOUBLE_EQ(scaled.fail_stop_fraction(), 0.25);
}

TEST(FailureModel, ErrorFreeWithAnyDistYieldsInfiniteArrivals) {
  // Regression: lambda == 0 must instantiate the degenerate "never
  // fails" distribution (+inf inter-arrival), not push 0 through a
  // quantile inversion whose infinite scale would produce NaN.
  for (const auto& spec :
       {FailureDistSpec::exponential(), FailureDistSpec::weibull(0.7),
        FailureDistSpec::lognormal(1.2),
        FailureDistSpec::trace_replay({10.0, 20.0, 30.0})}) {
    const FailureModel fm = FailureModel::error_free().with_dist(spec);
    const auto dist = fm.dist().instantiate(fm.fail_stop_rate(4096.0));
    rng::RngStream rng(1234);
    const double gap = dist->sample(rng);
    EXPECT_TRUE(std::isinf(gap)) << fm.dist().to_string();
    EXPECT_FALSE(std::isnan(gap)) << fm.dist().to_string();
    EXPECT_TRUE(std::isinf(dist->quantile(0.5)));
    EXPECT_TRUE(std::isinf(dist->mean()));
    EXPECT_DOUBLE_EQ(dist->cdf(1e300), 0.0);
  }
}

TEST(FailureModel, Preconditions) {
  EXPECT_THROW(FailureModel(-1e-8, 0.5), util::InvalidArgument);
  EXPECT_THROW(FailureModel(1e-8, -0.1), util::InvalidArgument);
  EXPECT_THROW(FailureModel(1e-8, 1.1), util::InvalidArgument);
  EXPECT_THROW((void)FailureModel::from_mtbf(0.0, 0.5),
               util::InvalidArgument);
  const FailureModel fm(1e-8, 0.5);
  EXPECT_THROW((void)fm.fail_stop_rate(0.5), util::InvalidArgument);
}

}  // namespace
}  // namespace ayd::model
