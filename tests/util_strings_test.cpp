#include "ayd/util/strings.hpp"

#include <gtest/gtest.h>

#include "ayd/util/units.hpp"

namespace ayd::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim("plain"), "plain");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Split, BasicFields) {
  const auto out = split("a,b,c", ',');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "b");
  EXPECT_EQ(out[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto out = split(",x,,", ',');
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "");
  EXPECT_EQ(out[1], "x");
  EXPECT_EQ(out[2], "");
  EXPECT_EQ(out[3], "");
}

TEST(Split, EmptyInputYieldsSingleEmptyField) {
  const auto out = split("", ',');
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "", "z"};
  EXPECT_EQ(join(parts, ","), "x,,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, EmptyVector) { EXPECT_EQ(join({}, ","), ""); }

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(ends_with("table.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", ".csv"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("Coastal SSD"), "coastal ssd");
  EXPECT_EQ(to_lower("ABC123xyz"), "abc123xyz");
}

TEST(FormatSig, SignificantDigits) {
  EXPECT_EQ(format_sig(300.0), "300");
  EXPECT_EQ(format_sig(1.69e-8), "1.69e-08");
  EXPECT_EQ(format_sig(0.1115, 3), "0.112");
  EXPECT_EQ(format_sig(-2.5), "-2.5");
}

TEST(FormatSig, NonFinite) {
  EXPECT_EQ(format_sig(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_sig(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_sig(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatDuration, SecondsBelowOneMinute) {
  EXPECT_EQ(format_duration(15.4), "15.4s");
  EXPECT_EQ(format_duration(0.5), "0.5s");
}

TEST(FormatDuration, MinutesAndHours) {
  EXPECT_EQ(format_duration(90.0), "1m30s");
  EXPECT_EQ(format_duration(3600.0), "1h00m");
  EXPECT_EQ(format_duration(5400.0), "1h30m");
  EXPECT_EQ(format_duration(120.0), "2m");
}

TEST(FormatDuration, Negative) { EXPECT_EQ(format_duration(-90.0), "-1m30s"); }

TEST(FormatSi, Suffixes) {
  EXPECT_EQ(format_si(999.0), "999");
  EXPECT_EQ(format_si(1200.0), "1.2k");
  EXPECT_EQ(format_si(3.4e6), "3.4M");
  EXPECT_EQ(format_si(1e12), "1T");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(days(1.0), 86400.0);
  EXPECT_DOUBLE_EQ(to_hours(7200.0), 2.0);
  EXPECT_DOUBLE_EQ(to_years(years(3.5)), 3.5);
}

}  // namespace
}  // namespace ayd::util
