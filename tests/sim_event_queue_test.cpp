#include "ayd/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "ayd/util/error.hpp"

namespace ayd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  (void)q.push(3.0, EventType::kFailStop);
  (void)q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kSilent);
  EXPECT_DOUBLE_EQ(q.pop()->time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 3.0);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  const auto first = q.push(5.0, EventType::kSilent);
  const auto second = q.push(5.0, EventType::kFailStop);
  EXPECT_EQ(q.pop()->id, first);
  EXPECT_EQ(q.pop()->id, second);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kFailStop);
  q.cancel(a);
  const auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 2.0);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  (void)q.push(1.0, EventType::kPhaseEnd);
  q.cancel(999);
  EXPECT_TRUE(q.pop().has_value());
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  (void)q.push(4.0, EventType::kSilent);
  EXPECT_DOUBLE_EQ(q.peek()->time, 4.0);
  EXPECT_DOUBLE_EQ(q.peek()->time, 4.0);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeekSkipsCancelledHead) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kSilent);
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.peek()->time, 2.0);
}

TEST(EventQueue, LiveSizeTracksCancellations) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kPhaseEnd);
  EXPECT_EQ(q.live_size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_size(), 1u);
}

TEST(EventQueue, ClearRemovesEverything) {
  EventQueue q;
  (void)q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kPhaseEnd);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, IdsAreUniqueAndIncreasing) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  const auto b = q.push(0.5, EventType::kPhaseEnd);
  EXPECT_LT(a, b);  // ids reflect insertion order, not time order
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW((void)q.push(-1.0, EventType::kPhaseEnd),
               util::InvalidArgument);
}

TEST(EventQueue, InfinityTimeOrdersLast) {
  EventQueue q;
  (void)q.push(std::numeric_limits<double>::infinity(),
               EventType::kFailStop);
  (void)q.push(10.0, EventType::kPhaseEnd);
  EXPECT_DOUBLE_EQ(q.pop()->time, 10.0);
}

TEST(EventTypeName, AllNamed) {
  EXPECT_EQ(event_type_name(EventType::kFailStop), "fail-stop");
  EXPECT_EQ(event_type_name(EventType::kSilent), "silent");
  EXPECT_EQ(event_type_name(EventType::kPhaseEnd), "phase-end");
}

}  // namespace
}  // namespace ayd::sim
