#include "ayd/sim/event_queue.hpp"

#include <queue>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "ayd/rng/stream.hpp"
#include "ayd/util/error.hpp"

namespace ayd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  (void)q.push(3.0, EventType::kFailStop);
  (void)q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kSilent);
  EXPECT_DOUBLE_EQ(q.pop()->time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 3.0);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  const auto first = q.push(5.0, EventType::kSilent);
  const auto second = q.push(5.0, EventType::kFailStop);
  EXPECT_EQ(q.pop()->id, first);
  EXPECT_EQ(q.pop()->id, second);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kFailStop);
  q.cancel(a);
  const auto e = q.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 2.0);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  (void)q.push(1.0, EventType::kPhaseEnd);
  q.cancel(999);
  EXPECT_TRUE(q.pop().has_value());
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  (void)q.push(1.0, EventType::kPhaseEnd);  // occupies the front slot
  const auto a = q.push(2.0, EventType::kSilent);   // lands in the heap
  const auto b = q.push(3.0, EventType::kFailStop);
  q.cancel(a);
  q.cancel(a);  // duplicate mark must not be recorded twice
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_DOUBLE_EQ(q.pop()->time, 1.0);
  EXPECT_EQ(q.pop()->id, b);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.live_size(), 0u);  // no stale mark left to underflow
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  (void)q.push(4.0, EventType::kSilent);
  EXPECT_DOUBLE_EQ(q.peek()->time, 4.0);
  EXPECT_DOUBLE_EQ(q.peek()->time, 4.0);
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeekSkipsCancelledHead) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kSilent);
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.peek()->time, 2.0);
}

TEST(EventQueue, LiveSizeTracksCancellations) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kPhaseEnd);
  EXPECT_EQ(q.live_size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_size(), 1u);
}

TEST(EventQueue, ClearRemovesEverything) {
  EventQueue q;
  (void)q.push(1.0, EventType::kPhaseEnd);
  (void)q.push(2.0, EventType::kPhaseEnd);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, IdsAreUniqueAndIncreasing) {
  EventQueue q;
  const auto a = q.push(1.0, EventType::kPhaseEnd);
  const auto b = q.push(0.5, EventType::kPhaseEnd);
  EXPECT_LT(a, b);  // ids reflect insertion order, not time order
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW((void)q.push(-1.0, EventType::kPhaseEnd),
               util::InvalidArgument);
}

TEST(EventQueue, InfinityTimeOrdersLast) {
  EventQueue q;
  (void)q.push(std::numeric_limits<double>::infinity(),
               EventType::kFailStop);
  (void)q.push(10.0, EventType::kPhaseEnd);
  EXPECT_DOUBLE_EQ(q.pop()->time, 10.0);
}

TEST(EventTypeName, AllNamed) {
  EXPECT_EQ(event_type_name(EventType::kFailStop), "fail-stop");
  EXPECT_EQ(event_type_name(EventType::kSilent), "silent");
  EXPECT_EQ(event_type_name(EventType::kPhaseEnd), "phase-end");
}

// ---- oracle tests for the arena heap + front slot ----------------------
//
// Reference model: std::priority_queue over the same (time, id) order
// with a lazy-cancellation set — the structure the arena queue replaced.
// Random workloads drive both and every pop must agree.

class OracleQueue {
 public:
  std::uint64_t push(double time, EventType type) {
    const std::uint64_t id = next_id_++;
    heap_.push(Event{time, type, id});
    return id;
  }
  void cancel(std::uint64_t id) { cancelled_.insert(id); }
  std::optional<Event> pop() {
    skip();
    if (heap_.empty()) return std::nullopt;
    Event e = heap_.top();
    heap_.pop();
    return e;
  }
  std::optional<Event> peek() {
    skip();
    if (heap_.empty()) return std::nullopt;
    return heap_.top();
  }
  void clear() {
    heap_ = {};
    cancelled_.clear();
    next_id_ = 0;
  }

 private:
  void skip() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_id_ = 0;
};

void expect_same(const std::optional<Event>& a, const std::optional<Event>& b,
                 const char* what, int step) {
  ASSERT_EQ(a.has_value(), b.has_value()) << what << " at step " << step;
  if (a.has_value()) {
    EXPECT_EQ(a->time, b->time) << what << " at step " << step;
    EXPECT_EQ(a->id, b->id) << what << " at step " << step;
    EXPECT_EQ(a->type, b->type) << what << " at step " << step;
  }
}

TEST(EventQueueOracle, RandomWorkloadsDrainIdentically) {
  rng::RngStream rng(2024);
  for (int round = 0; round < 50; ++round) {
    EventQueue q;
    OracleQueue oracle;
    std::vector<std::uint64_t> live;  // ids that may still be pending
    const int steps = 40 + static_cast<int>(rng.next_index(160));
    for (int s = 0; s < steps; ++s) {
      switch (rng.next_index(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // push, with deliberate tie mass
          const double time =
              rng.next_bernoulli(0.25)
                  ? static_cast<double>(rng.next_index(4))
                  : rng.next_uniform(0.0, 100.0);
          const auto type =
              static_cast<EventType>(rng.next_index(3));
          const auto a = q.push(time, type);
          const auto b = oracle.push(time, type);
          ASSERT_EQ(a, b);
          live.push_back(a);
          break;
        }
        case 4:
        case 5:
        case 6: {  // pop
          expect_same(q.pop(), oracle.pop(), "pop", s);
          break;
        }
        case 7: {  // peek
          expect_same(q.peek(), oracle.peek(), "peek", s);
          break;
        }
        case 8: {  // cancel a random (possibly already-popped) id
          if (!live.empty()) {
            const auto idx = rng.next_index(live.size());
            q.cancel(live[idx]);
            oracle.cancel(live[idx]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
          }
          break;
        }
        case 9: {  // occasional clear: fresh id epoch on both sides
          if (rng.next_bernoulli(0.2)) {
            q.clear();
            oracle.clear();
            live.clear();
          }
          break;
        }
      }
    }
    // Drain completely; order must match to the end.
    for (int guard = 0; guard < steps + 1; ++guard) {
      const auto a = q.pop();
      const auto b = oracle.pop();
      expect_same(a, b, "drain", guard);
      if (!a.has_value()) break;
    }
  }
}

TEST(EventQueueOracle, ReuseAcrossEpochsKeepsFreshIds) {
  EventQueue q;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto a = q.push(2.0, EventType::kPhaseEnd);
    const auto b = q.push(1.0, EventType::kSilent);
    EXPECT_EQ(a, 0u) << "ids restart each clear() epoch";
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(q.pop()->id, b);
    q.clear();
  }
}

TEST(EventQueueOracle, SlotDisplacementKeepsHeapOrder) {
  // Regression shape for the front slot: a newer-but-earlier push must
  // displace the buffered event into the heap, not lose it.
  EventQueue q;
  (void)q.push(5.0, EventType::kPhaseEnd);   // slot
  (void)q.push(3.0, EventType::kSilent);     // displaces slot
  (void)q.push(4.0, EventType::kFailStop);   // lands in heap
  EXPECT_DOUBLE_EQ(q.pop()->time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 4.0);
  EXPECT_DOUBLE_EQ(q.pop()->time, 5.0);
  EXPECT_FALSE(q.pop().has_value());
}

}  // namespace
}  // namespace ayd::sim
