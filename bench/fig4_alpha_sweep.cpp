// Reproduces Figure 4 (platform Hera): impact of the sequential fraction α
// on the optimal pattern, scenarios 1/3/5.
//   (a) optimal processor count P* — first-order and numerical;
//   (b) optimal checkpointing period T*;
//   (c) simulated execution overhead at the numerical optimum.
// Expected shape: smaller α → more processors and lower overhead; T* is
// α-independent in scenario 1; at α = 0 only the numerical solution
// exists and P* stays bounded (no infinite parallelism under failures).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 4 — impact of the sequential fraction (Hera)",
      "P*, T*, simulated overhead vs alpha for scenarios 1, 3, 5",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-max", "1e8", "processor-count search cap");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.scenarios({model::Scenario::kS1, model::Scenario::kS3,
                        model::Scenario::kS5})
            .axis(engine::Axis::list("alpha",
                                     {0.0, 1e-4, 1e-3, 1e-2, 1e-1}));

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.search.max_procs = args.option_double("p-max");
        spec.replication = ctx.replication();
        const engine::SystemSpec base{platform};

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys = engine::system_for_point(base, pt);
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              engine::Record r;
              r.set("scenario", model::scenario_name(*pt.scenario));
              r.set("alpha", pt.var("alpha"));
              if (ev.first_order->has_optimum) {
                r.set("fo_procs", std::max(1.0, ev.first_order->procs));
                r.set("fo_period", ev.first_order->period);
              }
              r.set("opt_procs", ev.allocation->procs);
              r.set("opt_period", ev.allocation->period);
              r.set("opt_overhead", ev.allocation->overhead);
              r.set("sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead, 4));
              r.set("sim_overhead", ev.sim_numerical->overhead.mean);
              return r;
            });

        for (const auto& [name, group] :
             engine::group_by(records, "scenario")) {
          const model::Scenario scenario = model::scenario_from_string(name);
          std::printf("== scenario %s (%s) ==\n", name.c_str(),
                      model::scenario_description(scenario).c_str());
          engine::TableSink table({{"alpha", "", 4},
                                   {"P* (FO)", "fo_procs", 4},
                                   {"T* (FO)", "fo_period", 4},
                                   {"P* (opt)", "opt_procs", 4},
                                   {"T* (opt)", "opt_period", 4},
                                   {"H pred (opt)", "opt_overhead", 4},
                                   {"H sim (opt)", "sim_cell"}});
          engine::emit(group, {&table});
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): P* grows and overhead falls as alpha "
            "shrinks; T* barely moves in scenario 1; alpha=0 has no "
            "first-order solution yet a bounded numerical optimum.\n");

        const std::vector<engine::ColumnSpec> series{
            {"scenario"},
            {"alpha", "", 6},
            {"fo_procs", "", 4},
            {"fo_period", "", 4},
            {"opt_procs", "", 6},
            {"opt_period", "", 6},
            {"sim_overhead", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
