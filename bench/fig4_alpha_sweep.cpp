// Reproduces Figure 4 (platform Hera): impact of the sequential fraction α
// on the optimal pattern, scenarios 1/3/5.
//   (a) optimal processor count P* — first-order and numerical;
//   (b) optimal checkpointing period T*;
//   (c) simulated execution overhead at the numerical optimum.
// Expected shape: smaller α → more processors and lower overhead; T* is
// α-independent in scenario 1; at α = 0 only the numerical solution
// exists and P* stays bounded (no infinite parallelism under failures).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 4 — impact of the sequential fraction (Hera)",
      "P*, T*, simulated overhead vs alpha for scenarios 1, 3, 5",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-max", "1e8", "processor-count search cap");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double p_max = args.option_double("p-max");
        auto pool = ctx.make_pool();
        const std::vector<double> alphas{0.0, 1e-4, 1e-3, 1e-2, 1e-1};
        const std::vector<model::Scenario> scenarios{
            model::Scenario::kS1, model::Scenario::kS3, model::Scenario::kS5};
        std::vector<std::vector<std::string>> csv_rows;

        for (const auto scenario : scenarios) {
          std::printf("== scenario %s (%s) ==\n",
                      model::scenario_name(scenario).c_str(),
                      model::scenario_description(scenario).c_str());
          io::Table table({"alpha", "P* (FO)", "T* (FO)", "P* (opt)",
                           "T* (opt)", "H pred (opt)", "H sim (opt)"});
          for (const double alpha : alphas) {
            const model::System sys =
                model::System::from_platform(platform, scenario, alpha);
            core::AllocationSearchOptions aopt;
            aopt.max_procs = p_max;
            const core::AllocationOptimum opt =
                core::optimal_allocation(sys, aopt);
            const sim::ReplicationResult sim = sim::simulate_overhead(
                sys, {opt.period, opt.procs}, ctx.replication(), pool.get());
            const core::FirstOrderSolution fo = core::solve_first_order(sys);
            std::string fo_p = bench::kNoValue, fo_t = bench::kNoValue;
            if (fo.has_optimum) {
              fo_p = util::format_sig(std::max(1.0, fo.procs), 4);
              fo_t = util::format_sig(fo.period, 4);
            }
            table.add_row({util::format_sig(alpha, 4), fo_p, fo_t,
                           util::format_sig(opt.procs, 4),
                           util::format_sig(opt.period, 4),
                           util::format_sig(opt.overhead, 4),
                           bench::mean_ci_cell(sim.overhead, 4)});
            csv_rows.push_back({model::scenario_name(scenario),
                                util::format_sig(alpha, 6), fo_p, fo_t,
                                util::format_sig(opt.procs, 6),
                                util::format_sig(opt.period, 6),
                                util::format_sig(sim.overhead.mean, 6)});
          }
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): P* grows and overhead falls as alpha "
            "shrinks; T* barely moves in scenario 1; alpha=0 has no "
            "first-order solution yet a bounded numerical optimum.\n");
        bench::maybe_write_csv(ctx,
                               {"scenario", "alpha", "fo_procs", "fo_period",
                                "opt_procs", "opt_period", "sim_overhead"},
                               csv_rows);
      });
}
