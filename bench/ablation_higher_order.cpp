// Ablation / extension: Daly-style higher-order period estimate for the
// VC protocol. The paper's Theorem 1 generalises Young's first-order
// formula to both error sources; this bench quantifies how much of the
// remaining gap to the exact numerical optimum is closed by transplanting
// Daly's (2006) higher-order series, on every platform and across the
// error-rate sweep of Figure 5.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — Theorem 1 vs Daly-style higher-order period",
      "accuracy of the closed-form periods against the exact numerical "
      "optimum",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext&) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));

        std::printf("per-platform at the measured allocation:\n");
        io::Table table({"Platform", "T (Thm 1)", "T (Daly-style)",
                         "T (exact)", "errT Thm1", "errT Daly",
                         "dH Thm1", "dH Daly"});
        table.set_align(0, io::Align::kLeft);
        for (const auto& platform : model::all_platforms()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          const double p = platform.measured_procs;
          const double t1 = core::optimal_period_first_order(sys, p);
          const double td = core::daly_period_vc(sys, p);
          const core::PeriodOptimum num = core::optimal_period(sys, p);
          const double h1 = core::pattern_overhead(sys, {t1, p});
          const double hd = core::pattern_overhead(sys, {td, p});
          table.add_row(
              {platform.name, util::format_sig(t1, 4),
               util::format_sig(td, 4), util::format_sig(num.period, 4),
               util::format_sig(100.0 * (t1 / num.period - 1.0), 2) + "%",
               util::format_sig(100.0 * (td / num.period - 1.0), 2) + "%",
               util::format_sig(h1 - num.overhead, 2),
               util::format_sig(hd - num.overhead, 2)});
        }
        std::printf("%s\n", table.to_string().c_str());

        std::printf("Hera, error-rate sweep (the correction matters at "
                    "high lambda and vanishes as lambda -> 0):\n");
        io::Table sweep({"lambda", "errT Thm1", "errT Daly", "dH Thm1",
                         "dH Daly"});
        const model::System base =
            model::System::from_platform(model::hera(), scenario);
        for (const double lam : {1e-10, 1e-9, 1e-8, 1e-7, 1e-6}) {
          const model::System sys = base.with_lambda(lam);
          const double p = model::hera().measured_procs;
          const double t1 = core::optimal_period_first_order(sys, p);
          const double td = core::daly_period_vc(sys, p);
          const core::PeriodOptimum num = core::optimal_period(sys, p);
          sweep.add_row(
              {util::format_sig(lam, 3),
               util::format_sig(100.0 * (t1 / num.period - 1.0), 2) + "%",
               util::format_sig(100.0 * (td / num.period - 1.0), 2) + "%",
               util::format_sig(
                   core::pattern_overhead(sys, {t1, p}) - num.overhead, 2),
               util::format_sig(
                   core::pattern_overhead(sys, {td, p}) - num.overhead,
                   2)});
        }
        std::printf("%s", sweep.to_string().c_str());
        std::printf(
            "\nWith silent errors absent the Daly-style series reduces "
            "exactly to Daly (2006); Theorem 1 reduces to Young (1974). "
            "The higher-order period consistently lands below the exact "
            "optimum by about a third of Theorem 1's overshoot.\n");
      });
}
