// Ablation / extension: Daly-style higher-order period estimate for the
// VC protocol. The paper's Theorem 1 generalises Young's first-order
// formula to both error sources; this bench quantifies how much of the
// remaining gap to the exact numerical optimum is closed by transplanting
// Daly's (2006) higher-order series, on every platform and across the
// error-rate sweep of Figure 5.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/overhead.hpp"
#include "ayd/core/young_daly.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — Theorem 1 vs Daly-style higher-order period",
      "accuracy of the closed-form periods against the exact numerical "
      "optimum",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        auto pool = ctx.make_pool();

        // All-analytic evaluation shared by both sweeps.
        const auto evaluate = [&](const model::System& sys, double p) {
          const double t1 = core::optimal_period_first_order(sys, p);
          const double td = core::daly_period_vc(sys, p);
          const core::PeriodOptimum num = core::optimal_period(sys, p);
          engine::Record r;
          r.set("t_thm1", t1);
          r.set("t_daly", td);
          r.set("t_exact", num.period);
          r.set("errT_thm1", 100.0 * (t1 / num.period - 1.0));
          r.set("errT_daly", 100.0 * (td / num.period - 1.0));
          r.set("dH_thm1",
                core::pattern_overhead(sys, {t1, p}) - num.overhead);
          r.set("dH_daly",
                core::pattern_overhead(sys, {td, p}) - num.overhead);
          return r;
        };

        std::printf("per-platform at the measured allocation:\n");
        engine::GridSpec platform_grid;
        platform_grid.platforms(model::all_platforms());
        const auto platform_records = engine::run_grid(
            platform_grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(*pt.platform, scenario);
              engine::Record r =
                  evaluate(sys, pt.platform->measured_procs);
              r.set("Platform", pt.platform->name);
              return r;
            });
        engine::TableSink table({{"Platform", "", 4, "", io::Align::kLeft},
                                 {"T (Thm 1)", "t_thm1", 4},
                                 {"T (Daly-style)", "t_daly", 4},
                                 {"T (exact)", "t_exact", 4},
                                 {"errT Thm1", "errT_thm1", 2, "%"},
                                 {"errT Daly", "errT_daly", 2, "%"},
                                 {"dH Thm1", "dH_thm1", 2},
                                 {"dH Daly", "dH_daly", 2}});
        engine::emit(platform_records, {&table});
        std::printf("%s\n", table.to_string().c_str());

        std::printf("Hera, error-rate sweep (the correction matters at "
                    "high lambda and vanishes as lambda -> 0):\n");
        const model::System base =
            model::System::from_platform(model::hera(), scenario);
        engine::GridSpec sweep_grid;
        sweep_grid.axis(engine::Axis::list(
            "lambda", {1e-10, 1e-9, 1e-8, 1e-7, 1e-6}));
        const auto sweep_records = engine::run_grid(
            sweep_grid, pool.get(), [&](const engine::Point& pt) {
              engine::Record r =
                  evaluate(engine::apply_axes(base, pt),
                           model::hera().measured_procs);
              r.set("lambda", pt.var("lambda"));
              return r;
            });
        engine::TableSink sweep({{"lambda", "", 3},
                                 {"errT Thm1", "errT_thm1", 2, "%"},
                                 {"errT Daly", "errT_daly", 2, "%"},
                                 {"dH Thm1", "dH_thm1", 2},
                                 {"dH Daly", "dH_daly", 2}});
        engine::emit(sweep_records, {&sweep});
        std::printf("%s", sweep.to_string().c_str());
        std::printf(
            "\nWith silent errors absent the Daly-style series reduces "
            "exactly to Daly (2006); Theorem 1 reduces to Young (1974). "
            "The higher-order period consistently lands below the exact "
            "optimum by about a third of Theorem 1's overshoot.\n");
      });
}
