// Ablation: our nested 1-D optimiser vs the Jin et al. (ICPP'10)-style
// alternating relaxation the paper cites as the generic numerical method.
// Both minimise the same exact H(T, P); the table shows they land on the
// same optimum, and what each costs (outer evaluations vs rounds).

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/baselines.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/math/special.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — nested optimiser vs Jin-style iterative relaxation",
      "agreement and cost of the two numerical solvers on every scenario",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext&) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        io::Table table({"Scn", "P* nested", "P* Jin", "H nested", "H Jin",
                         "rel diff", "outer evals", "Jin rounds"});
        for (const auto scenario : model::all_scenarios()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          core::AllocationSearchOptions nested_opt;
          nested_opt.refine_integer = false;
          nested_opt.max_procs = 1e7;
          const core::AllocationOptimum nested =
              core::optimal_allocation(sys, nested_opt);
          core::JinRelaxationOptions jin_opt;
          jin_opt.max_procs = 1e7;
          const core::JinRelaxationResult jin = core::jin_relaxation(sys, jin_opt);
          table.add_row(
              {model::scenario_name(scenario),
               util::format_sig(nested.procs_continuous, 5),
               util::format_sig(jin.procs, 5),
               util::format_sig(nested.overhead, 6),
               util::format_sig(jin.overhead, 6),
               util::format_sig(
                   math::rel_diff(nested.overhead, jin.overhead), 2),
               util::format_sig(nested.outer_evaluations, 3),
               util::format_sig(jin.rounds, 3)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nBoth solvers minimise the same exact objective; overhead "
            "agreement should be ~1e-6 or better on every row.\n");
      });
}
