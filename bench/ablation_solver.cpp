// Ablation: our nested 1-D optimiser vs the Jin et al. (ICPP'10)-style
// alternating relaxation the paper cites as the generic numerical method.
// Both minimise the same exact H(T, P); the table shows they land on the
// same optimum, and what each costs (outer evaluations vs rounds).

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/baselines.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/math/special.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — nested optimiser vs Jin-style iterative relaxation",
      "agreement and cost of the two numerical solvers on every scenario",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.scenarios(model::all_scenarios());

        engine::EvalSpec spec;
        spec.numerical = true;
        spec.search.refine_integer = false;
        spec.search.max_procs = 1e7;

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(platform, *pt.scenario);
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              core::JinRelaxationOptions jin_opt;
              jin_opt.max_procs = 1e7;
              const core::JinRelaxationResult jin =
                  core::jin_relaxation(sys, jin_opt);
              engine::Record r;
              r.set("Scn", model::scenario_name(*pt.scenario));
              r.set("nested_procs", ev.allocation->procs_continuous);
              r.set("jin_procs", jin.procs);
              r.set("nested_overhead", ev.allocation->overhead);
              r.set("jin_overhead", jin.overhead);
              r.set("rel_diff",
                    math::rel_diff(ev.allocation->overhead, jin.overhead));
              r.set("outer_evals",
                    static_cast<double>(ev.allocation->outer_evaluations));
              r.set("jin_rounds", static_cast<double>(jin.rounds));
              return r;
            });

        engine::TableSink table({{"Scn"},
                                 {"P* nested", "nested_procs", 5},
                                 {"P* Jin", "jin_procs", 5},
                                 {"H nested", "nested_overhead", 6},
                                 {"H Jin", "jin_overhead", 6},
                                 {"rel diff", "rel_diff", 2},
                                 {"outer evals", "outer_evals", 3},
                                 {"Jin rounds", "jin_rounds", 3}});
        engine::emit(records, {&table});
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nBoth solvers minimise the same exact objective; overhead "
            "agreement should be ~1e-6 or better on every row.\n");
      });
}
