// Reproduces Figure 2: optimal pattern parameters and execution overhead
// in the six resilience scenarios on all four platforms (α = 0.1,
// D = 1 h). For each (platform, scenario) the harness prints:
//   * the first-order solution (Theorems 2/3; absent in scenario 6),
//   * the numerically optimal solution,
//   * the simulated execution overhead of both patterns (with 95% CIs),
//   * the first-order and numerical overhead predictions.
// The paper's headline observation — first-order ≈ optimal in scenarios
// 1-4, degraded accuracy in scenario 5, no first-order solution in
// scenario 6 — is directly visible in the rows.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Figure 2 — optimal patterns per scenario on four platforms",
      "first-order vs numerically optimal P*, T*, overhead + simulation",
      [](cli::ArgParser& p) {
        p.add_option("alpha", "0.1", "sequential fraction of the job");
        p.add_option("downtime", "3600", "downtime D in seconds");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const double alpha = args.option_double("alpha");
        const double downtime = args.option_double("downtime");
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.platforms(model::all_platforms())
            .scenarios(model::all_scenarios());

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.simulate_first_order = true;
        spec.search.max_procs = 1e8;
        spec.replication = ctx.replication();

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys = model::System::from_platform(
                  *pt.platform, *pt.scenario, alpha, downtime);
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              engine::Record r;
              r.set("platform", pt.platform->name);
              r.set("scenario", model::scenario_name(*pt.scenario));
              if (ev.first_order->has_optimum) {
                r.set("fo_procs",
                      std::max(1.0, std::round(ev.first_order->procs)));
                r.set("fo_period", ev.first_order->period);
                r.set("fo_overhead", ev.first_order->overhead);
                r.set("fo_sim_cell",
                      engine::mean_ci_cell(ev.sim_first_order->overhead));
              }
              r.set("opt_procs", ev.allocation->procs);
              r.set("opt_period", ev.allocation->period);
              r.set("opt_overhead", ev.allocation->overhead);
              r.set("sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead));
              r.set("sim_overhead", ev.sim_numerical->overhead.mean);
              return r;
            });

        for (const auto& [name, group] :
             engine::group_by(records, "platform")) {
          std::printf("== %s (alpha=%s, D=%ss) ==\n", name.c_str(),
                      util::format_sig(alpha).c_str(),
                      util::format_sig(downtime).c_str());
          engine::TableSink table({{"Scn", "scenario"},
                                   {"P* (FO)", "fo_procs", 4},
                                   {"T* (FO)", "fo_period", 4},
                                   {"H pred (FO)", "fo_overhead", 4},
                                   {"H sim (FO)", "fo_sim_cell"},
                                   {"P* (opt)", "opt_procs", 4},
                                   {"T* (opt)", "opt_period", 4},
                                   {"H pred (opt)", "opt_overhead", 4},
                                   {"H sim (opt)", "sim_cell"}});
          engine::emit(group, {&table});
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): FO ≈ optimal in scenarios 1-4; "
            "scenario 5 FO slightly off (small constant cost); scenario 6 "
            "numerical only, with the largest P* and smallest T*.\n");

        const std::vector<engine::ColumnSpec> series{
            {"platform"},
            {"scenario"},
            {"fo_procs", "", 4},
            {"fo_period", "", 4},
            {"fo_overhead", "", 4},
            {"opt_procs", "", 6},
            {"opt_period", "", 6},
            {"opt_overhead", "", 6},
            {"sim_overhead", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
