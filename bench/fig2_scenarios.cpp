// Reproduces Figure 2: optimal pattern parameters and execution overhead
// in the six resilience scenarios on all four platforms (α = 0.1,
// D = 1 h). For each (platform, scenario) the harness prints:
//   * the first-order solution (Theorems 2/3; absent in scenario 6),
//   * the numerically optimal solution,
//   * the simulated execution overhead of both patterns (with 95% CIs),
//   * the first-order and numerical overhead predictions.
// The paper's headline observation — first-order ≈ optimal in scenarios
// 1-4, degraded accuracy in scenario 5, no first-order solution in
// scenario 6 — is directly visible in the rows.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Figure 2 — optimal patterns per scenario on four platforms",
      "first-order vs numerically optimal P*, T*, overhead + simulation",
      [](cli::ArgParser& p) {
        p.add_option("alpha", "0.1", "sequential fraction of the job");
        p.add_option("downtime", "3600", "downtime D in seconds");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const double alpha = args.option_double("alpha");
        const double downtime = args.option_double("downtime");
        auto pool = ctx.make_pool();
        std::vector<std::vector<std::string>> csv_rows;

        for (const auto& platform : model::all_platforms()) {
          std::printf("== %s (alpha=%s, D=%ss) ==\n", platform.name.c_str(),
                      util::format_sig(alpha).c_str(),
                      util::format_sig(downtime).c_str());
          io::Table table({"Scn", "P* (FO)", "T* (FO)", "H pred (FO)",
                           "H sim (FO)", "P* (opt)", "T* (opt)",
                           "H pred (opt)", "H sim (opt)"});
          for (const auto scenario : model::all_scenarios()) {
            const model::System sys = model::System::from_platform(
                platform, scenario, alpha, downtime);

            // Numerical optimum (the paper's "Optimal").
            core::AllocationSearchOptions aopt;
            aopt.max_procs = 1e8;
            const core::AllocationOptimum opt =
                core::optimal_allocation(sys, aopt);
            const sim::ReplicationResult sim_opt = sim::simulate_overhead(
                sys, {opt.period, opt.procs}, ctx.replication(), pool.get());

            // First-order closed form (the paper's "First-order").
            const core::FirstOrderSolution fo = core::solve_first_order(sys);
            std::vector<std::string> row{model::scenario_name(scenario)};
            std::string fo_p = bench::kNoValue, fo_t = bench::kNoValue,
                        fo_h = bench::kNoValue, fo_sim = bench::kNoValue;
            if (fo.has_optimum) {
              const double procs = std::max(1.0, std::round(fo.procs));
              const sim::ReplicationResult sim_fo = sim::simulate_overhead(
                  sys, {fo.period, procs}, ctx.replication(), pool.get());
              fo_p = util::format_sig(procs, 4);
              fo_t = util::format_sig(fo.period, 4);
              fo_h = util::format_sig(fo.overhead, 4);
              fo_sim = bench::mean_ci_cell(sim_fo.overhead);
            }
            row.insert(row.end(),
                       {fo_p, fo_t, fo_h, fo_sim,
                        util::format_sig(opt.procs, 4),
                        util::format_sig(opt.period, 4),
                        util::format_sig(opt.overhead, 4),
                        bench::mean_ci_cell(sim_opt.overhead)});
            table.add_row(row);
            csv_rows.push_back(
                {platform.name, model::scenario_name(scenario), fo_p, fo_t,
                 fo_h, util::format_sig(opt.procs, 6),
                 util::format_sig(opt.period, 6),
                 util::format_sig(opt.overhead, 6),
                 util::format_sig(sim_opt.overhead.mean, 6)});
          }
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): FO ≈ optimal in scenarios 1-4; "
            "scenario 5 FO slightly off (small constant cost); scenario 6 "
            "numerical only, with the largest P* and smallest T*.\n");
        bench::maybe_write_csv(
            ctx,
            {"platform", "scenario", "fo_procs", "fo_period", "fo_overhead",
             "opt_procs", "opt_period", "opt_overhead", "sim_overhead"},
            csv_rows);
      });
}
