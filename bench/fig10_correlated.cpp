// Figure 10 (beyond the paper): optimum drift under correlated and
// multi-level failure worlds.
//
// The paper's planner — and figs 1-9 — assume i.i.d. per-node failures,
// where the platform interruption rate is f·lambda·P. A correlated world
// (model/correlated.hpp) replaces a fraction rho of that intensity with
// a platform-wide shock stream of rate rho·f·lambda/g: the per-node
// marginal is unchanged, but the *interruption* rate the application
// sees drops to (1-rho)·f·lambda·P + rho·f·lambda/g, so the true optimal
// period lengthens and the i.i.d. plan checkpoints too often. A two-tier
// cost spec (--pfs-penalty rows) additionally prices shock-triggered
// rollbacks at the parallel-file-system rate, pushing the optimum back
// down. Each row pits the simulation-true optimum of one correlated
// configuration against the i.i.d. simulation-true optimum of the same
// base system: `period_drift` and `waste_drift` are the fractions by
// which the correlated world moves T* and the achievable overhead.
//
// The default configuration raises lambda_ind to 1e-7/s and the
// fail-stop fraction to 0.95 at P = 256 — a failure-prone, fail-stop-
// dominated stress setup (not a platform preset). Both are deliberate:
// the shock mixture redistributes only the fail-stop stream, so a
// platform like Hera (f = 0.22) keeps 78% of its error budget in the
// i.i.d. silent stream and the optimum barely moves, and at preset
// lambdas the overhead bowl is too flat for CI-scale replication to
// resolve the drift. Fixed seeds throughout: the emitted
// BENCH_fig10.json is byte-identical across runs and thread counts.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"

namespace {

using namespace ayd;

struct WorldConfig {
  double rho;
  double group;
  double pfs_penalty;
};

engine::EvalSpec make_spec(const cli::ExperimentContext& ctx,
                           double ci_rel_tol, std::size_t max_reps) {
  engine::EvalSpec spec;
  spec.sim_optimize = true;
  spec.sim_search.period.replication = ctx.replication();
  spec.sim_search.period.adaptive.ci_rel_tol = ci_rel_tol;
  spec.sim_search.period.adaptive.min_replicas = ctx.runs;
  spec.sim_search.period.adaptive.max_replicas =
      std::max(max_reps, ctx.runs);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv,
      "Figure 10 — optimum drift under correlated failure worlds",
      "simulation-true optimal period and waste of correlated node-group "
      "failure worlds (shock mixture, optional two-tier recovery) "
      "against the i.i.d. optimum of the same base system",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset for the costs");
        p.add_option("scenario", "1", "Table III resilience scenario");
        p.add_option("alpha", "0.1", "sequential fraction");
        p.add_option("lambda", "1e-7",
                     "per-processor error rate of the stress setup (1/s)");
        p.add_option("fail-stop", "0.95",
                     "fail-stop fraction of the stress setup (the shock "
                     "mixture redistributes only the fail-stop stream)");
        p.add_option("procs", "256", "fixed allocation P");
        p.add_option("ci-rel-tol", "0.01",
                     "adaptive replication CI target (relative)");
        p.add_option("max-reps", "4096",
                     "adaptive replication cap per candidate");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        const double procs = args.option_double("procs");
        auto pool = ctx.make_pool();

        const model::System preset =
            model::System::from_platform(platform, scenario,
                                         args.option_double("alpha"));
        const model::System base(
            model::FailureModel(args.option_double("lambda"),
                                args.option_double("fail-stop")),
            preset.costs(), preset.downtime(), preset.speedup_model());
        const engine::EvalSpec spec = make_spec(
            ctx, args.option_double("ci-rel-tol"),
            static_cast<std::size_t>(args.option_uint("max-reps")));

        // The i.i.d. reference optimum every row drifts against.
        const engine::PointEval iid =
            engine::evaluate_point(base, spec, procs, pool.get());
        const core::SimPeriodOptimum& iid_opt = *iid.sim_period;

        // Interruption-rate ratio vs i.i.d.: r = (1-rho) + rho/(gP).
        // Strong correlation (small r) separates the optima well past
        // the replication noise of the adaptive CI target; weak shocks
        // leave the quadratic bowl around T* too flat to resolve.
        const std::vector<WorldConfig> configs = {
            {0.7, 0.02, 1.0},
            {0.9, 0.05, 1.0},
            {0.9, 0.02, 1.0},
            {0.9, 0.05, 8.0},
        };

        std::vector<engine::Record> records;
        for (const WorldConfig& cfg : configs) {
          model::System sys = base.with_shock({cfg.rho, cfg.group});
          if (cfg.pfs_penalty > 1.0) {
            sys = sys.with_two_tier(model::TwoTierCostSpec::from_penalty(
                sys.costs(), cfg.pfs_penalty));
          }
          const engine::PointEval ev =
              engine::evaluate_point(sys, spec, procs, pool.get());
          const core::SimPeriodOptimum& opt = *ev.sim_period;

          // Shock telemetry at the correlated optimum (fixed-count
          // replication; the drift columns above carry the CIs).
          static thread_local sim::ReplicationScratch scratch;
          const sim::ReplicationResult at_opt = sim::simulate_overhead(
              sys, {opt.period, procs}, ctx.replication(), pool.get(),
              &scratch);

          engine::Record r;
          r.set("rho", cfg.rho);
          r.set("group", cfg.group);
          r.set("pfs_penalty", cfg.pfs_penalty);
          r.set("iid_period", iid_opt.period);
          r.set("corr_period", opt.period);
          r.set("period_drift", opt.period / iid_opt.period - 1.0);
          r.set("iid_overhead", iid_opt.overhead.mean);
          r.set("corr_overhead", opt.overhead.mean);
          r.set("corr_cell", engine::mean_ci_cell(opt.overhead));
          r.set("waste_drift",
                opt.overhead.mean / iid_opt.overhead.mean - 1.0);
          r.set("shocks_per_pattern", at_opt.shock_errors_per_pattern);
          r.set("replicas", static_cast<double>(opt.total_replicas));
          r.set("ci_ok",
                opt.ci_converged && iid_opt.ci_converged ? 1.0 : 0.0);
          records.push_back(std::move(r));
        }

        std::printf(
            "costs %s scenario %s, lambda_ind=%s/s, f=%s, P=%s; i.i.d. "
            "T*=%s, H=%s\n\n",
            platform.name.c_str(), model::scenario_name(scenario).c_str(),
            util::format_sig(args.option_double("lambda")).c_str(),
            util::format_sig(args.option_double("fail-stop")).c_str(),
            util::format_sig(procs).c_str(),
            util::format_sig(iid_opt.period, 4).c_str(),
            util::format_sig(iid_opt.overhead.mean, 4).c_str());
        engine::TableSink table({{"rho", "rho", 2},
                                 {"g", "group", 2},
                                 {"phi", "pfs_penalty", 2},
                                 {"T* (corr)", "corr_period", 4},
                                 {"T drift", "period_drift", 3},
                                 {"H (corr)", "corr_cell"},
                                 {"H drift", "waste_drift", 3},
                                 {"shocks/pat", "shocks_per_pattern", 3},
                                 {"reps", "replicas", 4}});
        engine::emit(records, {&table});
        std::printf("%s\n", table.to_string().c_str());
        std::printf(
            "T drift > 0: correlation concentrates failures into rarer "
            "platform events, so the true optimum checkpoints less often "
            "than the i.i.d. plan; the two-tier row (phi > 1) pays PFS "
            "recoveries on shock rollbacks and gives part of it back.\n");

        const std::vector<engine::ColumnSpec> series{
            {"rho", "rho", 4},
            {"group", "group", 4},
            {"pfs_penalty", "pfs_penalty", 4},
            {"iid_period", "iid_period", 6},
            {"corr_period", "corr_period", 6},
            {"period_drift", "period_drift", 6},
            {"iid_overhead", "iid_overhead", 6},
            {"corr_overhead", "corr_overhead", 6},
            {"waste_drift", "waste_drift", 6},
            {"shocks_per_pattern", "shocks_per_pattern", 6},
            {"replicas", "replicas", 6},
            {"ci_ok", "ci_ok", 1}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
