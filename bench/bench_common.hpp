// Thin shim for the experiment binaries. Formatting of simulation
// summaries and CSV dumping live in the engine's sink layer
// (ayd/engine/sink.hpp); this header re-exports them under the historical
// bench:: names and keeps the standard main() wrapper that turns CLI
// errors into readable messages.

#pragma once

#include <chrono>
#include <cstdio>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "ayd/cli/args.hpp"
#include "ayd/cli/experiment.hpp"
#include "ayd/engine/sink.hpp"

namespace ayd::bench {

/// "0.1123 ±0.0004" — the simulated-mean cell used across all tables.
using engine::mean_ci_cell;

/// "-" placeholder used when a column does not apply (e.g. first-order
/// solution in scenario 6).
inline const char* kNoValue = engine::kNoValue;

/// Elapsed wall-clock seconds since `start` — the timing helper the
/// micro-benches share.
inline double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs an experiment body with uniform option parsing / error handling.
/// `setup` may add extra options before parsing. Returns process exit code.
inline int run_experiment_main(
    int argc, char** argv, const std::string& title,
    const std::string& description,
    const std::function<void(cli::ArgParser&)>& setup,
    const std::function<void(const cli::ArgParser&,
                             const cli::ExperimentContext&)>& body) {
  try {
    cli::ArgParser parser(argv[0] != nullptr ? argv[0] : "bench",
                          description);
    cli::add_experiment_options(parser);
    if (setup) setup(parser);
    parser.parse(argc, argv);
    if (parser.help_requested()) {
      std::fputs(parser.help().c_str(), stdout);
      return 0;
    }
    const cli::ExperimentContext ctx = cli::read_experiment_context(parser);
    cli::print_experiment_header(title, ctx);
    body(parser, ctx);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// Writes rows to ctx.csv_path when set (header first), else does nothing.
/// Kept for out-of-tree users; in-tree benches feed an engine::CsvSink.
inline void maybe_write_csv(const cli::ExperimentContext& ctx,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  engine::write_series_csv(ctx.csv_path, header, rows);
}

}  // namespace ayd::bench
