// Figure 8 (beyond the paper): robustness of the first-order optimum
// when failures are not Poisson.
//
// The paper's Theorems 1-3 (and Young/Daly before them) assume
// exponential inter-arrivals, but field studies of HPC failure logs fit
// Weibull shapes k < 1 (bursty, infant-mortality-dominated). This
// experiment plans the pattern with the exponential-assumption planner —
// first-order (Theorem 1) and the exact numerical optimum at the
// platform's measured allocation — then executes both under Weibull
// failures of the same MTBF, sweeping the shape k. The gap between the
// two simulated overheads, and between each and the exponential
// prediction, is the price of the Poisson assumption: near k = 1 both
// collapse onto the paper's Figure 2 numbers; for bursty k << 1 the
// overhead grows well past the prediction while the FO pattern stays
// close to the re-optimised one.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Figure 8 — exponential-assumption optima under Weibull failures",
      "simulated overhead of the FO and numerically optimal patterns vs "
      "Weibull shape k (k = 1 is the paper's exponential model)",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to stress");
        p.add_option("scenario", "3", "Table III resilience scenario");
        p.add_option("alpha", "0.1", "sequential fraction");
        p.add_flag("crn",
                   "share common-random-number variate pools across the "
                   "sweep (one pool per swept shape; smoother "
                   "shape-to-shape differences)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        const double alpha = args.option_double("alpha");
        const double procs = platform.measured_procs;
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.axis(engine::Axis::list(
            "weibull_k", {0.5, 0.7, 0.85, 1.0, 1.25, 1.5, 2.0}));

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.simulate_first_order = true;
        spec.replication = ctx.replication();
        sim::VariateCache crn_cache;  // outlives the grid run
        if (args.flag("crn")) spec.crn = &crn_cache;
        const engine::SystemSpec base{platform, scenario, alpha};

        const auto sweep_t0 = std::chrono::steady_clock::now();
        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              // system_for_point applies the weibull_k axis; the planner
              // stages inside evaluate_point stay exponential-based, so
              // the simulated pattern is exactly the one the paper's
              // analysis would deploy.
              const model::System sys = engine::system_for_point(base, pt);
              const engine::PointEval ev =
                  engine::evaluate_point(sys, spec, procs);
              engine::Record r;
              r.set("weibull_k", pt.var("weibull_k"));
              r.set("fo_period", *ev.fo_period);
              r.set("opt_period", ev.period->period);
              r.set("pred_overhead", ev.period->overhead);
              r.set("fo_sim_cell",
                    engine::mean_ci_cell(ev.sim_first_order->overhead));
              r.set("fo_sim_overhead", ev.sim_first_order->overhead.mean);
              r.set("opt_sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead));
              r.set("opt_sim_overhead", ev.sim_numerical->overhead.mean);
              r.set("drift",
                    ev.sim_numerical->overhead.mean /
                            ev.sim_numerical->analytic_overhead -
                        1.0);
              return r;
            });

        std::printf("platform %s, scenario %s, alpha=%s, P=%s (measured)\n\n",
                    platform.name.c_str(),
                    model::scenario_name(scenario).c_str(),
                    util::format_sig(alpha).c_str(),
                    util::format_sig(procs).c_str());
        engine::TableSink table({{"k", "weibull_k", 3},
                                 {"T* (FO)", "fo_period", 4},
                                 {"T* (opt)", "opt_period", 4},
                                 {"H pred (exp)", "pred_overhead", 4},
                                 {"H sim (FO)", "fo_sim_cell"},
                                 {"H sim (opt)", "opt_sim_cell"},
                                 {"drift", "drift", 3}});
        engine::emit(records, {&table});
        std::printf("%s\n", table.to_string().c_str());
        std::printf(
            "Expected shape: at k = 1 the simulated overheads match the "
            "exponential prediction (drift ~ 0); for bursty k < 1 the "
            "drift is positive and grows as k falls, while FO and "
            "re-optimised patterns stay close to each other.\n");

        // Grep-able speedup row (see bench/baselines/README.md): sweep
        // wall time and replication throughput per variate tier; with
        // --crn each swept shape owns one shared pool, so the pool count
        // equals the number of sampling passes the sweep paid for.
        {
          const double sweep_s = bench::seconds_since(sweep_t0);
          const auto opts = ctx.replication();
          // Two simulated evaluations (FO and re-optimised pattern) per
          // grid point.
          const double replications =
              2.0 * static_cast<double>(records.size()) *
              static_cast<double>(opts.replicas);
          std::printf(
              "FIG-BENCH fig8 [%s]: %zu points  %.3fs  %.0f replications/s"
              "%s  crn pools: %zu\n",
              rng::simd::tier_name(rng::simd::active_tier()), records.size(),
              sweep_s, replications / sweep_s,
              args.flag("crn") ? "  (one sampling pass per swept shape)"
                               : "",
              crn_cache.size());
        }

        const std::vector<engine::ColumnSpec> series{
            {"weibull_k", "", 4},
            {"fo_period", "", 6},
            {"opt_period", "", 6},
            {"pred_overhead", "", 6},
            {"fo_sim_overhead", "", 6},
            {"opt_sim_overhead", "", 6},
            {"drift", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
