// Ablation: the two simulator back-ends. The event-queue DES is the
// faithful reference (traceable, event-by-event); the fast sampler
// exploits exponential memorylessness to draw each attempt's fate in O(1).
// This bench verifies they estimate the same overhead and measures the
// throughput gap that justifies defaulting to the fast path.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"

using ayd::bench::seconds_since;

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Ablation — DES engine vs fast sampler backend",
      "agreement and throughput of the two simulation back-ends",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "1", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));

        engine::GridSpec grid;
        grid.platforms(model::all_platforms());

        // Timing ablation: points run serially (no pool) so the measured
        // patterns/s are not distorted by co-scheduled points.
        const auto records =
            engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(*pt.platform, scenario);
              const double p = pt.platform->measured_procs;
              const core::Pattern pattern{
                  core::optimal_period_first_order(sys, p), p};

              sim::ReplicationOptions fast_opt = ctx.replication();
              fast_opt.backend = sim::Backend::kFast;
              sim::ReplicationOptions des_opt = ctx.replication();
              des_opt.backend = sim::Backend::kDes;

              const auto t0 = std::chrono::steady_clock::now();
              const sim::ReplicationResult fast =
                  sim::simulate_overhead(sys, pattern, fast_opt);
              const double fast_time = seconds_since(t0);

              const auto t1 = std::chrono::steady_clock::now();
              const sim::ReplicationResult des =
                  sim::simulate_overhead(sys, pattern, des_opt);
              const double des_time = seconds_since(t1);

              const auto n = static_cast<double>(fast.total_patterns);
              engine::Record r;
              r.set("Platform", pt.platform->name);
              r.set("H fast", engine::mean_ci_cell(fast.overhead, 4));
              r.set("H DES", engine::mean_ci_cell(des.overhead, 4));
              r.set("patterns/s fast", util::format_si(n / fast_time, 3));
              r.set("patterns/s DES", util::format_si(n / des_time, 3));
              r.set("speedup", des_time / fast_time);
              return r;
            });

        engine::TableSink table({{"Platform", "", 4, "", io::Align::kLeft},
                                 {"H fast"},
                                 {"H DES"},
                                 {"patterns/s fast"},
                                 {"patterns/s DES"},
                                 {"speedup", "", 3, "x"}});
        engine::emit(records, {&table});
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nThe two back-ends sample the same stochastic process; their "
            "overhead CIs must overlap. The fast path's advantage is pure "
            "constant-factor (no event queue).\n");
      });
}
