// Ablation: the two simulator back-ends. The event-queue DES is the
// faithful reference (traceable, event-by-event); the fast sampler
// exploits exponential memorylessness to draw each attempt's fate in O(1).
// This bench verifies they estimate the same overhead and measures the
// throughput gap that justifies defaulting to the fast path.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Ablation — DES engine vs fast sampler backend",
      "agreement and throughput of the two simulation back-ends",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "1", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        io::Table table({"Platform", "H fast", "H DES", "patterns/s fast",
                         "patterns/s DES", "speedup"});
        table.set_align(0, io::Align::kLeft);
        for (const auto& platform : model::all_platforms()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          const double p = platform.measured_procs;
          const core::Pattern pattern{
              core::optimal_period_first_order(sys, p), p};

          sim::ReplicationOptions fast_opt = ctx.replication();
          fast_opt.backend = sim::Backend::kFast;
          sim::ReplicationOptions des_opt = ctx.replication();
          des_opt.backend = sim::Backend::kDes;

          const auto t0 = std::chrono::steady_clock::now();
          const sim::ReplicationResult fast =
              sim::simulate_overhead(sys, pattern, fast_opt);
          const double fast_time = seconds_since(t0);

          const auto t1 = std::chrono::steady_clock::now();
          const sim::ReplicationResult des =
              sim::simulate_overhead(sys, pattern, des_opt);
          const double des_time = seconds_since(t1);

          const auto n = static_cast<double>(fast.total_patterns);
          table.add_row(
              {platform.name, bench::mean_ci_cell(fast.overhead, 4),
               bench::mean_ci_cell(des.overhead, 4),
               util::format_si(n / fast_time, 3),
               util::format_si(n / des_time, 3),
               util::format_sig(des_time / fast_time, 3) + "x"});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nThe two back-ends sample the same stochastic process; their "
            "overhead CIs must overlap. The fast path's advantage is pure "
            "constant-factor (no event queue).\n");
      });
}
