// Figure 9 (beyond the paper): the price of the exponential closed form,
// and the simulation-true optimum that replaces it.
//
// fig8 showed that executing the exponential-assumption optimum under
// Weibull failures costs more than the model predicts. This experiment
// closes the loop: at the platform's measured allocation it (1) plans
// the period with the paper's exponential formula, (2) finds the *true*
// optimum of the configured non-exponential process with the
// simulation-driven optimizer (core/sim_optimizer: adaptive replication,
// common random numbers, paired-CI stopping), and (3) executes both
// under the true process. Columns report the period shift T*sim/T*exp
// and the overhead gap H(T*exp)/H(T*sim) − 1 — the fraction of wall
// clock the exponential assumption wastes, with confidence intervals.
// At k = 1 (genuinely exponential inter-arrivals sampled through the
// Weibull quantile) the gap must vanish within noise.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"

namespace {

using namespace ayd;

engine::EvalSpec make_spec(const cli::ExperimentContext& ctx,
                           std::size_t max_reps) {
  engine::EvalSpec spec;
  spec.numerical = true;  // the exponential-formula planner
  spec.sim_optimize = true;
  spec.sim_search.period.replication = ctx.replication();
  spec.sim_search.period.adaptive.min_replicas = ctx.runs;
  spec.sim_search.period.adaptive.max_replicas =
      std::max(max_reps, ctx.runs);
  return spec;
}

engine::Record eval_one(const model::System& sys, double procs,
                        const std::string& family, double shape,
                        const engine::EvalSpec& spec) {
  const engine::PointEval ev = engine::evaluate_point(sys, spec, procs);

  // Execute the exponential-formula period under the true process, with
  // the same adaptive stopping rule (and the same CRN seed) the
  // optimizer's candidates used, so the two overhead columns are
  // comparable point estimates.
  static thread_local sim::ReplicationScratch scratch;
  const sim::ReplicationResult at_exp = sim::simulate_overhead_adaptive(
      sys, {ev.period->period, procs}, spec.sim_search.period.replication,
      spec.sim_search.period.adaptive, nullptr, &scratch);

  const core::SimPeriodOptimum& sim = *ev.sim_period;
  engine::Record r;
  r.set("dist", sys.failure().dist().to_string());
  r.set("family", family);
  r.set("shape", shape);
  r.set("exp_period", ev.period->period);
  r.set("sim_period", sim.period);
  r.set("period_ratio", sim.period / ev.period->period);
  r.set("pred_overhead", ev.period->overhead);
  r.set("exp_sim_cell", engine::mean_ci_cell(at_exp.overhead));
  r.set("exp_sim_overhead", at_exp.overhead.mean);
  r.set("opt_sim_cell", engine::mean_ci_cell(sim.overhead));
  r.set("opt_sim_overhead", sim.overhead.mean);
  r.set("gap", at_exp.overhead.mean / sim.overhead.mean - 1.0);
  r.set("replicas", static_cast<double>(sim.total_replicas));
  // 0 when max_reps capped either estimate before the CI target: the
  // intervals on that row are wider than the requested ci_rel_tol.
  r.set("ci_ok", sim.ci_converged && at_exp.ci_converged ? 1.0 : 0.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv,
      "Figure 9 — exponential-formula vs. simulation-true optima",
      "period shift and overhead gap of the exponential-assumption "
      "planner across Weibull shapes and lognormal sigmas (simulated "
      "optima carry adaptive-replication confidence intervals)",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to stress");
        p.add_option("scenario", "3", "Table III resilience scenario");
        p.add_option("alpha", "0.1", "sequential fraction");
        p.add_option("ci-rel-tol", "0.02",
                     "adaptive replication CI target (relative)");
        p.add_option("max-reps", "4096",
                     "adaptive replication cap per candidate");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        const double alpha = args.option_double("alpha");
        const double procs = platform.measured_procs;
        auto pool = ctx.make_pool();

        const engine::EvalSpec base_spec = make_spec(
            ctx, static_cast<std::size_t>(args.option_uint("max-reps")));
        const engine::SystemSpec base{platform, scenario, alpha};

        const auto run_family = [&](const char* family, const char* axis,
                                    std::vector<double> shapes) {
          engine::GridSpec grid;
          grid.axis(engine::Axis::list(axis, std::move(shapes)));
          // The CI target rides along as an evaluation-level axis so the
          // per-point spec comes out of apply_eval_axes, exactly like a
          // ci_rel_tol sweep would.
          grid.axis(engine::Axis::list(
              "ci_rel_tol", {args.option_double("ci-rel-tol")}));
          return engine::run_grid(
              grid, pool.get(), [&](const engine::Point& pt) {
                const model::System sys = engine::system_for_point(base, pt);
                const engine::EvalSpec spec =
                    engine::apply_eval_axes(base_spec, pt);
                return eval_one(sys, procs, family, pt.var(axis), spec);
              });
        };

        std::vector<engine::Record> records =
            run_family("weibull", "weibull_k", {0.5, 0.7, 0.85, 1.0, 1.5});
        for (engine::Record& r :
             run_family("lognormal", "lognormal_sigma", {0.6, 1.0, 1.5})) {
          records.push_back(std::move(r));
        }

        std::printf("platform %s, scenario %s, alpha=%s, P=%s (measured)\n\n",
                    platform.name.c_str(),
                    model::scenario_name(scenario).c_str(),
                    util::format_sig(alpha).c_str(),
                    util::format_sig(procs).c_str());
        engine::TableSink table({{"distribution", "dist"},
                                 {"T* (exp formula)", "exp_period", 4},
                                 {"T* (sim true)", "sim_period", 4},
                                 {"T ratio", "period_ratio", 3},
                                 {"H sim @ exp T*", "exp_sim_cell"},
                                 {"H sim @ sim T*", "opt_sim_cell"},
                                 {"gap", "gap", 3},
                                 {"reps", "replicas", 4}});
        engine::emit(records, {&table});
        std::printf("%s\n", table.to_string().c_str());
        std::printf(
            "gap = H(exp-formula period)/H(simulated optimum) - 1: the "
            "overhead fraction the exponential assumption wastes. It "
            "vanishes (within CI noise) at weibull k = 1 and grows for "
            "bursty shapes k << 1 and heavy-tailed sigmas.\n");

        const std::vector<engine::ColumnSpec> series{
            {"dist", "dist"},
            {"family", "family"},
            {"shape", "shape", 4},
            {"exp_period", "exp_period", 6},
            {"sim_period", "sim_period", 6},
            {"period_ratio", "period_ratio", 6},
            {"pred_overhead", "pred_overhead", 6},
            {"exp_sim_overhead", "exp_sim_overhead", 6},
            {"opt_sim_overhead", "opt_sim_overhead", 6},
            {"gap", "gap", 6},
            {"replicas", "replicas", 6},
            {"ci_ok", "ci_ok", 1}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
