// Microbenchmark of the experiment engine: points/second on a multi-point
// grid, serial vs point-parallel, plus a determinism check (parallel
// records must be bit-identical to serial ones). Emits a machine-readable
// BENCH_engine.json so the perf trajectory of the engine can be tracked
// across commits.

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/io/json.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  using bench::seconds_since;
  return bench::run_experiment_main(
      argc, argv, "Micro — engine grid throughput (serial vs parallel)",
      "points/sec of a representative sweep grid; JSON written for the "
      "perf trajectory",
      [](cli::ArgParser& p) {
        p.add_option("out", "BENCH_engine.json",
                     "output path for the JSON record");
        p.add_option("reps", "3", "timing repetitions (best is kept)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        // A representative grid: every scenario x an error-rate sweep,
        // evaluated with the numerical period optimum plus a replicated
        // simulation — the same work profile as the Figure 3-7 benches.
        engine::GridSpec grid;
        grid.scenarios(model::all_scenarios())
            .axis(engine::Axis::log_spaced("lambda", 1e-11, 1e-8, 8));

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_first_order = true;
        spec.replication = ctx.replication();
        const model::Platform platform = model::hera();

        const engine::EvalFn eval = [&](const engine::Point& pt) {
          const model::System sys = engine::apply_axes(
              model::System::from_platform(platform, *pt.scenario), pt);
          const double p = platform.measured_procs;
          const engine::PointEval ev = engine::evaluate_point(sys, spec, p);
          engine::Record r;
          r.set("scenario", model::scenario_name(*pt.scenario));
          r.set("lambda", pt.var("lambda"));
          r.set("fo_period", *ev.fo_period);
          r.set("opt_period", ev.period->period);
          r.set("sim_overhead", ev.sim_first_order->overhead.mean);
          return r;
        };

        const int reps =
            static_cast<int>(args.option_int("reps"));
        auto pool = ctx.make_pool();
        const std::size_t points = grid.size();

        double serial_best = 0.0;
        double parallel_best = 0.0;
        std::vector<engine::Record> serial_records;
        std::vector<engine::Record> parallel_records;
        for (int rep = 0; rep < reps; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          serial_records = engine::run_grid(grid, nullptr, eval);
          const double serial = seconds_since(t0);
          if (rep == 0 || serial < serial_best) serial_best = serial;

          const auto t1 = std::chrono::steady_clock::now();
          parallel_records = engine::run_grid(grid, pool.get(), eval);
          const double parallel = seconds_since(t1);
          if (rep == 0 || parallel < parallel_best) parallel_best = parallel;
        }

        // Point-level parallelism must not change a single number.
        bool deterministic = serial_records.size() == parallel_records.size();
        for (std::size_t i = 0; deterministic && i < serial_records.size();
             ++i) {
          deterministic =
              serial_records[i].text("scenario") ==
                  parallel_records[i].text("scenario") &&
              serial_records[i].num("sim_overhead") ==
                  parallel_records[i].num("sim_overhead") &&
              serial_records[i].num("opt_period") ==
                  parallel_records[i].num("opt_period");
        }

        const double speedup = serial_best / parallel_best;
        std::printf(
            "grid: %zu points (%zu scenarios x 8 lambdas), %zu replicas x "
            "%zu patterns per point\n",
            points, model::all_scenarios().size(), ctx.runs, ctx.patterns);
        std::printf("serial:   %.3fs  (%.1f points/s)\n", serial_best,
                    static_cast<double>(points) / serial_best);
        std::printf("parallel: %.3fs  (%.1f points/s, %zu threads)\n",
                    parallel_best,
                    static_cast<double>(points) / parallel_best,
                    pool->size());
        std::printf("speedup:  %.2fx   deterministic: %s\n", speedup,
                    deterministic ? "yes" : "NO — BUG");

        const std::string out_path = args.option("out");
        std::ofstream out(out_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
          return;
        }
        io::JsonWriter json(out, /*pretty=*/true);
        json.begin_object();
        json.kv("benchmark", "engine_grid_throughput");
        json.kv("version", util::version_string());
        json.kv("grid_points", static_cast<std::uint64_t>(points));
        json.kv("replicas", static_cast<std::uint64_t>(ctx.runs));
        json.kv("patterns_per_replica",
                static_cast<std::uint64_t>(ctx.patterns));
        json.kv("threads", static_cast<std::uint64_t>(pool->size()));
        json.kv("serial_seconds", serial_best);
        json.kv("parallel_seconds", parallel_best);
        json.kv("points_per_sec_serial",
                static_cast<double>(points) / serial_best);
        json.kv("points_per_sec_parallel",
                static_cast<double>(points) / parallel_best);
        json.kv("speedup", speedup);
        json.kv("deterministic", deterministic);
        json.end_object();
        out << "\n";
        std::printf("(JSON record written to %s)\n", out_path.c_str());
      });
}
