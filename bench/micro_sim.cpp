// Google-benchmark microbenchmarks for the simulation stack: RNG, event
// queue, and per-pattern throughput of both protocol back-ends.

#include <benchmark/benchmark.h>

#include "ayd/core/first_order.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/sim/event_queue.hpp"
#include "ayd/sim/protocol.hpp"
#include "ayd/sim/runner.hpp"

namespace {

using ayd::core::Pattern;
using ayd::model::Scenario;
using ayd::model::System;

const System& hera_s1() {
  static const System sys =
      System::from_platform(ayd::model::hera(), Scenario::kS1);
  return sys;
}

Pattern hera_pattern() {
  return {ayd::core::optimal_period_first_order(hera_s1(), 512.0), 512.0};
}

void BM_RngNextU64(benchmark::State& state) {
  ayd::rng::RngStream rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngExponential(benchmark::State& state) {
  ayd::rng::RngStream rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_exponential(1e-5));
  }
}
BENCHMARK(BM_RngExponential);

void BM_EventQueuePushPop(benchmark::State& state) {
  ayd::sim::EventQueue q;
  ayd::rng::RngStream rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      (void)q.push(rng.next_uniform01() * 1e6,
                   ayd::sim::EventType::kPhaseEnd);
    }
    for (int i = 0; i < 16; ++i) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_FastPattern(benchmark::State& state) {
  ayd::sim::FastProtocolSimulator simulator(hera_s1(), hera_pattern());
  ayd::rng::RngStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.simulate_pattern(rng));
  }
}
BENCHMARK(BM_FastPattern);

void BM_DesPattern(benchmark::State& state) {
  ayd::sim::DesProtocolSimulator simulator(hera_s1(), hera_pattern());
  ayd::rng::RngStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.simulate_pattern(rng));
  }
}
BENCHMARK(BM_DesPattern);

void BM_ReplicatedOverheadEstimate(benchmark::State& state) {
  ayd::sim::ReplicationOptions opt;
  opt.replicas = 8;
  opt.patterns_per_replica = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ayd::sim::simulate_overhead(hera_s1(), hera_pattern(), opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          32);
}
BENCHMARK(BM_ReplicatedOverheadEstimate);

}  // namespace

BENCHMARK_MAIN();
