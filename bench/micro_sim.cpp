// Microbenchmark of the simulation stack: single-thread replication
// throughput (runs/sec and patterns/sec) of both protocol back-ends under
// exponential and Weibull arrivals, emitted as BENCH_sim.json so the perf
// trajectory of the simulator hot path is tracked across commits.
//
// The committed pre-overhaul baseline (bench/baselines/sim_baseline.csv,
// generated with this very harness against the pre-arena/pre-batching
// library) is loaded when present and each configuration reports its
// speedup against it. Comparisons are only meaningful on a comparable
// machine — the JSON carries the numbers either way; CI greps the
// "SIM-BENCH" summary lines.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/io/csv.hpp"
#include "ayd/io/json.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

namespace {

using namespace ayd;
using bench::seconds_since;

struct Config {
  std::string dist;     ///< "exponential" | "weibull:k=0.7"
  std::string backend;  ///< "fast" | "des"
  sim::Backend kind;
};

struct Measurement {
  Config config;
  double runs_per_sec = 0.0;
  double patterns_per_sec = 0.0;
  std::optional<double> baseline_runs_per_sec;
};

/// Best-of-`reps` throughput of serial simulate_overhead calls; the outer
/// iteration count is calibrated so one rep runs long enough to time
/// reliably.
Measurement measure(const Config& cfg, const model::System& sys,
                    const core::Pattern& pattern,
                    const sim::ReplicationOptions& opt, int reps) {
  sim::ReplicationScratch scratch;
  const auto one_call = [&] {
    (void)sim::simulate_overhead(sys, pattern, opt, nullptr, &scratch);
  };

  // Calibrate: aim for ~0.25 s per rep.
  auto t0 = std::chrono::steady_clock::now();
  one_call();
  const double probe = seconds_since(t0);
  const auto outer = static_cast<std::size_t>(
      std::fmax(1.0, std::ceil(0.25 / std::fmax(probe, 1e-6))));

  double best = probe * static_cast<double>(outer);
  for (int rep = 0; rep < reps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < outer; ++i) one_call();
    best = std::fmin(best, seconds_since(t0));
  }

  Measurement m;
  m.config = cfg;
  const double runs = static_cast<double>(outer * opt.replicas);
  m.runs_per_sec = runs / best;
  m.patterns_per_sec =
      runs * static_cast<double>(opt.patterns_per_replica) / best;
  return m;
}

/// Loads "dist,backend,runs_per_sec" rows (header skipped) from the
/// committed pre-overhaul baseline, if present.
std::map<std::pair<std::string, std::string>, double> load_baseline(
    const std::string& requested) {
  std::map<std::pair<std::string, std::string>, double> out;
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    candidates = {"bench/baselines/sim_baseline.csv",
                  "../bench/baselines/sim_baseline.csv",
                  "../../bench/baselines/sim_baseline.csv"};
  }
  for (const std::string& path : candidates) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream os;
    os << in.rdbuf();
    const auto rows = io::parse_csv(os.str());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() < 3) continue;
      // Tolerate stray or annotated rows: skip anything non-numeric.
      const auto value = util::parse_strict_double(rows[i][2]);
      if (!value.has_value()) continue;
      out[{rows[i][0], rows[i][1]}] = *value;
    }
    if (!out.empty()) return out;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv, "Micro — simulator replication throughput (fast vs DES)",
      "single-thread runs/sec of both protocol back-ends under exponential "
      "and Weibull arrivals; JSON written for the perf trajectory",
      [](cli::ArgParser& p) {
        p.add_option("out", "BENCH_sim.json",
                     "output path for the JSON record");
        p.add_option("reps", "5", "timing repetitions (best is kept)");
        p.add_option("baseline", "",
                     "pre-overhaul baseline CSV (default: "
                     "bench/baselines/sim_baseline.csv if found)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform = model::hera();
        const model::System base =
            model::System::from_platform(platform, model::Scenario::kS1);
        const core::Pattern pattern{
            core::optimal_period_first_order(base, platform.measured_procs),
            platform.measured_procs};

        sim::ReplicationOptions opt;
        opt.replicas = ctx.runs;
        opt.patterns_per_replica = ctx.patterns;
        opt.seed = ctx.seed;

        const std::vector<Config> configs{
            {"exponential", "fast", sim::Backend::kFast},
            {"exponential", "des", sim::Backend::kDes},
            {"weibull:k=0.7", "fast", sim::Backend::kFast},
            {"weibull:k=0.7", "des", sim::Backend::kDes},
        };
        const auto baseline = load_baseline(args.option("baseline"));
        const int reps = static_cast<int>(args.option_int("reps"));

        std::vector<Measurement> results;
        for (const Config& cfg : configs) {
          model::System sys = base;
          if (cfg.dist != "exponential") {
            sys = sys.with_failure_dist(model::FailureDistSpec::parse(cfg.dist));
          }
          opt.backend = cfg.kind;
          Measurement m = measure(cfg, sys, pattern, opt, reps);
          const auto hit = baseline.find({cfg.dist, cfg.backend});
          if (hit != baseline.end()) m.baseline_runs_per_sec = hit->second;
          results.push_back(m);

          if (m.baseline_runs_per_sec.has_value()) {
            std::printf("SIM-BENCH %-13s %-4s: %10.0f runs/s  %12.0f "
                        "patterns/s  (%.2fx baseline)\n",
                        cfg.dist.c_str(), cfg.backend.c_str(), m.runs_per_sec,
                        m.patterns_per_sec,
                        m.runs_per_sec / *m.baseline_runs_per_sec);
          } else {
            std::printf("SIM-BENCH %-13s %-4s: %10.0f runs/s  %12.0f "
                        "patterns/s\n",
                        cfg.dist.c_str(), cfg.backend.c_str(), m.runs_per_sec,
                        m.patterns_per_sec);
          }
        }

        const std::string out_path = args.option("out");
        std::ofstream out(out_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
          return;
        }
        io::JsonWriter json(out, /*pretty=*/true);
        json.begin_object();
        json.kv("benchmark", "sim_throughput");
        json.kv("version", util::version_string());
        json.kv("replicas", static_cast<std::uint64_t>(opt.replicas));
        json.kv("patterns_per_replica",
                static_cast<std::uint64_t>(opt.patterns_per_replica));
        json.kv("seed", static_cast<std::uint64_t>(opt.seed));
        json.kv("threads", static_cast<std::uint64_t>(1));
        json.kv("baseline_note",
                "baseline = pre-overhaul library measured with this harness "
                "on the reference machine; cross-machine speedups are "
                "indicative only");
        json.key("results");
        json.begin_array();
        for (const Measurement& m : results) {
          json.begin_object();
          json.kv("dist", m.config.dist);
          json.kv("backend", m.config.backend);
          json.kv("runs_per_sec", m.runs_per_sec);
          json.kv("patterns_per_sec", m.patterns_per_sec);
          if (m.baseline_runs_per_sec.has_value()) {
            json.kv("baseline_runs_per_sec", *m.baseline_runs_per_sec);
            json.kv("speedup_vs_baseline",
                    m.runs_per_sec / *m.baseline_runs_per_sec);
          }
          json.end_object();
        }
        json.end_array();
        json.end_object();
        out << "\n";
        std::printf("(JSON record written to %s)\n", out_path.c_str());
      });
}
