// Microbenchmark of the simulation stack: single-thread replication
// throughput (runs/sec and patterns/sec) of both protocol back-ends under
// exponential, Weibull and log-normal arrivals, emitted as BENCH_sim.json
// so the perf trajectory of the simulator hot path is tracked across
// commits.
//
// Each configuration is timed twice: once under the auto-detected SIMD
// variate tier (AVX2 where the host has it) and once under the forced
// scalar reference tier, so the JSON carries the vectorization gain
// (simd_vs_scalar) separately from machine drift. The committed baseline
// (bench/baselines/sim_baseline.csv — scalar reference tier, quick scale,
// single thread; see bench/baselines/README.md for the regeneration
// policy) is loaded when present and each configuration reports its
// speedup against it. Comparisons are only meaningful on a comparable
// machine — the JSON carries the numbers either way; CI greps the
// "SIM-BENCH" summary lines.
//
// A second section times a fig5-style lambda sweep under Weibull failures
// twice — independent per-point sampling vs common random numbers (one
// shared unit-variate pool, one sampling pass per grid) — and reports the
// end-to-end sweep speedup as crn_vs_independent.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/io/csv.hpp"
#include "ayd/io/json.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/version.hpp"

namespace {

using namespace ayd;
using bench::seconds_since;

struct Config {
  std::string dist;     ///< "exponential" | "weibull:k=0.7" | "lognormal:s=1.2"
  std::string backend;  ///< "fast" | "des"
  std::string regime;   ///< "paper" | "failure-rich"
  sim::Backend kind;
  /// Multiplier on the platform's lambda_ind; the failure-rich regime
  /// stresses the block pipeline (most draws need a transform).
  double lambda_scale = 1.0;
};

struct Throughput {
  double runs_per_sec = 0.0;
  double patterns_per_sec = 0.0;
};

struct Measurement {
  Config config;
  Throughput active;                 ///< under the auto-detected tier
  std::optional<Throughput> scalar;  ///< forced scalar reference tier
  /// True when the configuration never touches the variate tier (the
  /// exponential fast path is transcendental-free by construction), so a
  /// scalar re-measure would only report timing noise.
  bool tier_invariant = false;
  std::optional<double> baseline_runs_per_sec;
};

/// Best-of-`reps` throughput of serial simulate_overhead calls under the
/// currently active variate tier; the outer iteration count is calibrated
/// so one rep runs long enough to time reliably.
Throughput time_config(const model::System& sys, const core::Pattern& pattern,
                       const sim::ReplicationOptions& opt, int reps) {
  sim::ReplicationScratch scratch;
  const auto one_call = [&] {
    (void)sim::simulate_overhead(sys, pattern, opt, nullptr, &scratch);
  };

  // Calibrate: aim for ~0.25 s per rep.
  auto t0 = std::chrono::steady_clock::now();
  one_call();
  const double probe = seconds_since(t0);
  const auto outer = static_cast<std::size_t>(
      std::fmax(1.0, std::ceil(0.25 / std::fmax(probe, 1e-6))));

  double best = probe * static_cast<double>(outer);
  for (int rep = 0; rep < reps; ++rep) {
    t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < outer; ++i) one_call();
    best = std::fmin(best, seconds_since(t0));
  }

  Throughput t;
  const double runs = static_cast<double>(outer * opt.replicas);
  t.runs_per_sec = runs / best;
  t.patterns_per_sec =
      runs * static_cast<double>(opt.patterns_per_replica) / best;
  return t;
}

Measurement measure(const Config& cfg, const model::System& sys,
                    const core::Pattern& pattern,
                    const sim::ReplicationOptions& opt, int reps) {
  Measurement m;
  m.config = cfg;
  m.tier_invariant = cfg.dist == "exponential" && cfg.backend == "fast";
  m.active = time_config(sys, pattern, opt, reps);
  if (!m.tier_invariant &&
      rng::simd::active_tier() != rng::simd::Tier::kScalar) {
    rng::simd::force_tier(rng::simd::Tier::kScalar);
    m.scalar = time_config(sys, pattern, opt, reps);
    rng::simd::clear_forced_tier();
  }
  return m;
}

/// End-to-end wall time of a fig5-style lambda sweep under Weibull
/// failures: every point re-plans and simulates its own optimal period;
/// with CRN the points share one unit-variate pool (one sampling pass per
/// grid) instead of each re-sampling its replicas from scratch.
struct SweepResult {
  std::string dist;
  std::size_t points = 0;
  double seconds_independent = 0.0;
  double seconds_crn = 0.0;
};

SweepResult time_crn_sweep(const sim::ReplicationOptions& replication,
                           int reps) {
  const model::Platform platform = model::hera();
  const model::System base =
      model::System::from_platform(platform, model::Scenario::kS1)
          .with_failure_dist(model::FailureDistSpec::weibull(0.7));
  const double procs = platform.measured_procs;

  // A failure-rich band (x180..x450 the platform rate): sampling
  // dominates the sweep there, which is exactly where sharing one
  // sampling pass across the grid pays. Below the band, per-pattern
  // decision logic (common to both modes) dilutes the ratio; above it,
  // recovery draws — cheap on both sides — take over and the two modes
  // converge, until the block-pipeline gate vectorizes the independent
  // path outright. The planner is Theorem 1 (closed form), so the timed
  // work is the simulation itself, as in the paper's figures.
  const double lambda0 = base.failure().lambda_ind();
  engine::GridSpec grid;
  grid.axis(engine::Axis::spaced("lambda", 180.0 * lambda0, 450.0 * lambda0,
                                 32, /*log=*/true));
  const auto pts = grid.points();

  engine::EvalSpec spec;
  spec.first_order = true;
  spec.simulate_first_order = true;
  spec.replication = replication;
  // Fig-style sweeps run the fast sampler regardless of whatever backend
  // the caller's options were last pointed at.
  spec.replication.backend = sim::Backend::kFast;

  const auto run_sweep = [&](bool crn) {
    sim::VariateCache cache;  // fresh per sweep: pools are built in-run
    spec.crn = crn ? &cache : nullptr;
    const auto t0 = std::chrono::steady_clock::now();
    const auto records =
        engine::run_points(pts, nullptr, [&](const engine::Point& pt) {
          const model::System sys = engine::apply_axes(base, pt);
          const engine::PointEval ev =
              engine::evaluate_point(sys, spec, procs);
          engine::Record r;
          r.set("lambda", pt.var("lambda"));
          r.set("sim_overhead", ev.sim_first_order->overhead.mean);
          return r;
        });
    const double seconds = seconds_since(t0);
    if (records.size() != pts.size()) std::abort();  // keep the work live
    return seconds;
  };

  SweepResult r;
  r.dist = "weibull:k=0.7";
  r.points = pts.size();
  // One untimed warmup of each mode brings code, allocator arenas and
  // branch predictors to steady state; the timed reps then measure the
  // sweep itself, with each CRN rep still paying for its own pool
  // generation (fresh cache per rep — the one sampling pass is part of
  // the cost being claimed). The two modes alternate within each rep so
  // that slow drift in the machine's effective speed (turbo state, a
  // shared container's CPU quota draining after the throughput configs
  // above) hits both sides alike instead of biasing whichever runs last.
  (void)run_sweep(/*crn=*/false);
  (void)run_sweep(/*crn=*/true);
  r.seconds_independent = 1e300;
  r.seconds_crn = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    r.seconds_independent =
        std::fmin(r.seconds_independent, run_sweep(/*crn=*/false));
    r.seconds_crn = std::fmin(r.seconds_crn, run_sweep(/*crn=*/true));
  }
  return r;
}

/// Loads "dist,backend,regime,runs_per_sec" rows (header skipped) from
/// the committed scalar-reference-tier baseline, if present.
std::map<std::vector<std::string>, double> load_baseline(
    const std::string& requested) {
  std::map<std::vector<std::string>, double> out;
  std::vector<std::string> candidates;
  if (!requested.empty()) {
    candidates.push_back(requested);
  } else {
    candidates = {"bench/baselines/sim_baseline.csv",
                  "../bench/baselines/sim_baseline.csv",
                  "../../bench/baselines/sim_baseline.csv"};
  }
  for (const std::string& path : candidates) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream os;
    os << in.rdbuf();
    const auto rows = io::parse_csv(os.str());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() < 4) continue;
      // Tolerate stray or annotated rows: skip anything non-numeric.
      const auto value = util::parse_strict_double(rows[i][3]);
      if (!value.has_value()) continue;
      out[{rows[i][0], rows[i][1], rows[i][2]}] = *value;
    }
    if (!out.empty()) return out;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv,
      "Micro — simulator replication throughput (fast vs DES, SIMD vs "
      "scalar, CRN vs independent)",
      "single-thread runs/sec of both protocol back-ends under "
      "exponential, Weibull and log-normal arrivals, per variate tier; "
      "JSON written for the perf trajectory",
      [](cli::ArgParser& p) {
        p.add_option("out", "BENCH_sim.json",
                     "output path for the JSON record");
        p.add_option("reps", "5", "timing repetitions (best is kept)");
        p.add_option("sweep-reps", "3",
                     "timing repetitions of the CRN sweep (best is kept)");
        p.add_option("baseline", "",
                     "scalar-reference-tier baseline CSV (default: "
                     "bench/baselines/sim_baseline.csv if found)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform = model::hera();
        const model::System base =
            model::System::from_platform(platform, model::Scenario::kS1);

        sim::ReplicationOptions opt;
        opt.replicas = ctx.runs;
        opt.patterns_per_replica = ctx.patterns;
        opt.seed = ctx.seed;

        const std::vector<Config> configs{
            {"exponential", "fast", "paper", sim::Backend::kFast},
            {"exponential", "des", "paper", sim::Backend::kDes},
            {"weibull:k=0.7", "fast", "paper", sim::Backend::kFast},
            {"weibull:k=0.7", "des", "paper", sim::Backend::kDes},
            // x600 the platform rate: ~60% of draws land below threshold,
            // the regime where the fast path's SIMD block pipeline engages.
            {"weibull:k=0.7", "fast", "failure-rich", sim::Backend::kFast,
             600.0},
            {"lognormal:s=1.2", "fast", "paper", sim::Backend::kFast},
            {"lognormal:s=1.2", "des", "paper", sim::Backend::kDes},
            {"lognormal:s=1.2", "fast", "failure-rich", sim::Backend::kFast,
             600.0},
        };
        const auto baseline = load_baseline(args.option("baseline"));
        const int reps = static_cast<int>(args.option_int("reps"));
        const char* tier = rng::simd::tier_name(rng::simd::active_tier());

        std::vector<Measurement> results;
        for (const Config& cfg : configs) {
          model::System sys = base;
          if (cfg.lambda_scale != 1.0) {
            sys = sys.with_lambda(sys.failure().lambda_ind() *
                                  cfg.lambda_scale);
          }
          if (cfg.dist != "exponential") {
            sys = sys.with_failure_dist(model::FailureDistSpec::parse(cfg.dist));
          }
          // Each regime deploys its own Theorem-1 pattern (shape-blind, so
          // the paper-regime pattern matches the historical harness).
          const core::Pattern pattern{
              core::optimal_period_first_order(sys, platform.measured_procs),
              platform.measured_procs};
          opt.backend = cfg.kind;
          Measurement m = measure(cfg, sys, pattern, opt, reps);
          const auto hit = baseline.find({cfg.dist, cfg.backend, cfg.regime});
          if (hit != baseline.end()) m.baseline_runs_per_sec = hit->second;
          results.push_back(m);

          std::string extras;
          if (m.tier_invariant) {
            extras += "  tier-invariant";
          } else if (m.scalar.has_value()) {
            extras += "  " + util::format_sig(m.active.runs_per_sec /
                                                  m.scalar->runs_per_sec,
                                              3) +
                      "x scalar tier";
          }
          if (m.baseline_runs_per_sec.has_value()) {
            extras += "  " + util::format_sig(m.active.runs_per_sec /
                                                  *m.baseline_runs_per_sec,
                                              3) +
                      "x baseline";
          }
          std::printf("SIM-BENCH %-15s %-4s %-12s [%s]: %10.0f runs/s  "
                      "%12.0f patterns/s%s\n",
                      cfg.dist.c_str(), cfg.backend.c_str(),
                      cfg.regime.c_str(), tier, m.active.runs_per_sec,
                      m.active.patterns_per_sec, extras.c_str());
        }

        const SweepResult sweep = time_crn_sweep(
            opt, static_cast<int>(args.option_int("sweep-reps")));
        std::printf("SIM-BENCH crn-sweep %s [%s]: %zu pts  independent "
                    "%.3fs  crn %.3fs  (%sx)\n",
                    sweep.dist.c_str(), tier, sweep.points,
                    sweep.seconds_independent, sweep.seconds_crn,
                    util::format_sig(sweep.seconds_independent /
                                         sweep.seconds_crn,
                                     3)
                        .c_str());

        const std::string out_path = args.option("out");
        std::ofstream out(out_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
          return;
        }
        io::JsonWriter json(out, /*pretty=*/true);
        json.begin_object();
        json.kv("benchmark", "sim_throughput");
        json.kv("version", util::version_string());
        json.kv("tier", tier);
        json.kv("replicas", static_cast<std::uint64_t>(opt.replicas));
        json.kv("patterns_per_replica",
                static_cast<std::uint64_t>(opt.patterns_per_replica));
        json.kv("seed", static_cast<std::uint64_t>(opt.seed));
        json.kv("threads", static_cast<std::uint64_t>(1));
        json.kv("baseline_note",
                "baseline = scalar reference tier (AYD_SIMD=off) measured "
                "with this harness on the reference machine; cross-machine "
                "speedups are indicative only");
        json.key("results");
        json.begin_array();
        for (const Measurement& m : results) {
          json.begin_object();
          json.kv("dist", m.config.dist);
          json.kv("backend", m.config.backend);
          json.kv("regime", m.config.regime);
          json.kv("tier_invariant", m.tier_invariant);
          json.kv("runs_per_sec", m.active.runs_per_sec);
          json.kv("patterns_per_sec", m.active.patterns_per_sec);
          json.kv("ns_per_replication", 1e9 / m.active.runs_per_sec);
          if (m.scalar.has_value()) {
            json.kv("scalar_runs_per_sec", m.scalar->runs_per_sec);
            json.kv("simd_vs_scalar",
                    m.active.runs_per_sec / m.scalar->runs_per_sec);
          }
          if (m.baseline_runs_per_sec.has_value()) {
            json.kv("baseline_runs_per_sec", *m.baseline_runs_per_sec);
            json.kv("speedup_vs_baseline",
                    m.active.runs_per_sec / *m.baseline_runs_per_sec);
          }
          json.end_object();
        }
        json.end_array();
        json.key("crn_sweep");
        json.begin_object();
        json.kv("dist", sweep.dist);
        json.kv("planner", "first_order");
        json.kv("points", static_cast<std::uint64_t>(sweep.points));
        json.kv("replicas", static_cast<std::uint64_t>(opt.replicas));
        json.kv("patterns_per_replica",
                static_cast<std::uint64_t>(opt.patterns_per_replica));
        json.kv("seconds_independent", sweep.seconds_independent);
        json.kv("seconds_crn", sweep.seconds_crn);
        json.kv("crn_vs_independent",
                sweep.seconds_independent / sweep.seconds_crn);
        json.end_object();
        json.end_object();
        out << "\n";
        std::printf("(JSON record written to %s)\n", out_path.c_str());
      });
}
