// Ablation / extension: the three resilience protocols side by side —
// base VC (one verification + one stable checkpoint per pattern), multi-
// verification (n verifications, one checkpoint; catches silent errors
// early but still rolls the whole pattern back), and two-level (n
// verified in-memory checkpoints per stable checkpoint; silent errors
// re-execute one segment only). Both extensions instantiate the paper's
// §V "multi-level resilience protocols" future work.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

#include "ayd/core/multi_verification.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/two_level_protocol.hpp"
#include "ayd/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — VC vs multi-verification vs two-level checkpointing",
      "single-level, multi-verification and two-level protocols at each "
      "platform's measured allocation",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.platforms(model::all_platforms());

        engine::EvalSpec spec;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.replication = ctx.replication();

        // Only four grid points: keep the points serial and let each
        // simulation fan its replicas out over the whole pool instead.
        const auto records =
            engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(*pt.platform, scenario);
              const double p = pt.platform->measured_procs;

              const engine::PointEval base =
                  engine::evaluate_point(sys, spec, p, pool.get());

              const core::MultiOptimum mv = core::optimal_multi_pattern(sys, p);
              const sim::ReplicationResult mv_sim =
                  sim::simulate_multi_overhead(
                      sys, {mv.period, p, mv.segments}, ctx.replication(),
                      pool.get());

              const core::TwoLevelSystem two_sys =
                  core::TwoLevelSystem::with_memory_level1(sys);
              const core::TwoLevelOptimum two =
                  core::optimal_two_level_pattern(two_sys, p);
              const sim::ReplicationResult two_sim =
                  sim::simulate_two_level_overhead(
                      two_sys, {two.period, p, two.segments},
                      ctx.replication(), pool.get());

              const double base_mean = base.sim_numerical->overhead.mean;
              const auto gain = [&](double h) {
                return util::format_sig(
                           100.0 * (base_mean - h) / base_mean, 3) + "%";
              };
              engine::Record r;
              r.set("Platform", pt.platform->name);
              r.set("H VC",
                    engine::mean_ci_cell(base.sim_numerical->overhead, 4));
              r.set("n mv", std::to_string(mv.segments));
              r.set("H multi-verif", engine::mean_ci_cell(mv_sim.overhead, 4));
              r.set("n 2L", std::to_string(two.segments));
              r.set("H two-level", engine::mean_ci_cell(two_sim.overhead, 4));
              r.set("gain mv", gain(mv_sim.overhead.mean));
              r.set("gain 2L", gain(two_sim.overhead.mean));
              return r;
            });

        engine::TableSink table({{"Platform", "", 4, "", io::Align::kLeft},
                                 {"H VC"},
                                 {"n mv"},
                                 {"H multi-verif"},
                                 {"n 2L"},
                                 {"H two-level"},
                                 {"gain mv"},
                                 {"gain 2L"}});
        engine::emit(records, {&table});
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nTwo-level dominates multi-verification everywhere: both "
            "catch silent errors at segment boundaries, but only the "
            "two-level protocol's in-memory checkpoints avoid re-executing "
            "the segments that already verified clean. It also segments "
            "deeper (larger n): an extra boundary costs one more in-memory "
            "copy yet shrinks the silent rollback to a single segment, so "
            "n* ~ sqrt(2 lambda_s (C-L) / (lambda_f (V+L))) grows as "
            "fail-stops get rarer — most visibly on Atlas (f = 0.0625).\n");
      });
}
