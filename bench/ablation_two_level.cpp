// Ablation / extension: the three resilience protocols side by side —
// base VC (one verification + one stable checkpoint per pattern), multi-
// verification (n verifications, one checkpoint; catches silent errors
// early but still rolls the whole pattern back), and two-level (n
// verified in-memory checkpoints per stable checkpoint; silent errors
// re-execute one segment only). Both extensions instantiate the paper's
// §V "multi-level resilience protocols" future work.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/multi_verification.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/two_level.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/sim/two_level_protocol.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — VC vs multi-verification vs two-level checkpointing",
      "single-level, multi-verification and two-level protocols at each "
      "platform's measured allocation",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        const auto pool = ctx.make_pool();

        io::Table table({"Platform", "H VC", "n mv", "H multi-verif",
                         "n 2L", "H two-level", "gain mv", "gain 2L"});
        table.set_align(0, io::Align::kLeft);

        for (const auto& platform : model::all_platforms()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          const double p = platform.measured_procs;

          const core::PeriodOptimum base = core::optimal_period(sys, p);
          const sim::ReplicationResult base_sim = sim::simulate_overhead(
              sys, {base.period, p}, ctx.replication(), pool.get());

          const core::MultiOptimum mv = core::optimal_multi_pattern(sys, p);
          const sim::ReplicationResult mv_sim = sim::simulate_multi_overhead(
              sys, {mv.period, p, mv.segments}, ctx.replication(),
              pool.get());

          const core::TwoLevelSystem two_sys =
              core::TwoLevelSystem::with_memory_level1(sys);
          const core::TwoLevelOptimum two =
              core::optimal_two_level_pattern(two_sys, p);
          const sim::ReplicationResult two_sim =
              sim::simulate_two_level_overhead(
                  two_sys, {two.period, p, two.segments}, ctx.replication(),
                  pool.get());

          const auto gain = [&](double h) {
            return util::format_sig(
                       100.0 * (base_sim.overhead.mean - h) /
                           base_sim.overhead.mean, 3) + "%";
          };
          table.add_row({platform.name,
                         bench::mean_ci_cell(base_sim.overhead, 4),
                         std::to_string(mv.segments),
                         bench::mean_ci_cell(mv_sim.overhead, 4),
                         std::to_string(two.segments),
                         bench::mean_ci_cell(two_sim.overhead, 4),
                         gain(mv_sim.overhead.mean),
                         gain(two_sim.overhead.mean)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nTwo-level dominates multi-verification everywhere: both "
            "catch silent errors at segment boundaries, but only the "
            "two-level protocol's in-memory checkpoints avoid re-executing "
            "the segments that already verified clean. It also segments "
            "deeper (larger n): an extra boundary costs one more in-memory "
            "copy yet shrinks the silent rollback to a single segment, so "
            "n* ~ sqrt(2 lambda_s (C-L) / (lambda_f (V+L))) grows as "
            "fail-stops get rarer — most visibly on Atlas (f = 0.0625).\n");
      });
}
