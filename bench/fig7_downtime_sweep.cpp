// Reproduces Figure 7 (platform Hera, α = 0.1): impact of the downtime D
// (0 to 3 hours — replacement-based to repair-based restoration).
// Expected shape: the first-order pattern is D-independent (D is a
// lower-order term), the numerical P* decreases slightly with D, and the
// simulated overheads of both stay close because even a 3-hour downtime
// is small against the platform MTBF.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/units.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 7 — impact of downtime (Hera, alpha=0.1)",
      "P*, T*, simulated overhead vs downtime for scenarios 1, 3, 5",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("alpha", "0.1", "sequential fraction");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double alpha = args.option_double("alpha");
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.scenarios({model::Scenario::kS1, model::Scenario::kS3,
                        model::Scenario::kS5})
            .axis(engine::Axis::step("downtime_h", 0.0, 3.0, 0.5));

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.simulate_first_order = true;
        spec.search.max_procs = 1e8;
        spec.replication = ctx.replication();

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const double hours = pt.var("downtime_h");
              const model::System sys = model::System::from_platform(
                  platform, *pt.scenario, alpha, util::hours(hours));
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              engine::Record r;
              r.set("scenario", model::scenario_name(*pt.scenario));
              r.set("downtime_h", hours);
              if (ev.first_order->has_optimum) {
                r.set("fo_procs",
                      std::max(1.0, std::round(ev.first_order->procs)));
                r.set("fo_period", ev.first_order->period);
                r.set("fo_sim_cell",
                      engine::mean_ci_cell(ev.sim_first_order->overhead, 4));
                r.set("fo_sim_overhead", ev.sim_first_order->overhead.mean);
              }
              r.set("opt_procs", ev.allocation->procs);
              r.set("opt_period", ev.allocation->period);
              r.set("opt_sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead, 4));
              r.set("opt_sim_overhead", ev.sim_numerical->overhead.mean);
              return r;
            });

        for (const auto& [name, group] :
             engine::group_by(records, "scenario")) {
          const model::Scenario scenario = model::scenario_from_string(name);
          std::printf("== scenario %s (%s) ==\n", name.c_str(),
                      model::scenario_description(scenario).c_str());
          engine::TableSink table({{"D (h)", "downtime_h", 2},
                                   {"P* (FO)", "fo_procs", 4},
                                   {"T* (FO)", "fo_period", 4},
                                   {"H sim (FO)", "fo_sim_cell"},
                                   {"P* (opt)", "opt_procs", 4},
                                   {"T* (opt)", "opt_period", 4},
                                   {"H sim (opt)", "opt_sim_cell"}});
          engine::emit(group, {&table});
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): first-order columns constant in D; "
            "numerical P* drifts down slightly with D; simulated overheads "
            "of the two stay close.\n");

        const std::vector<engine::ColumnSpec> series{
            {"scenario"},
            {"downtime_h", "", 4},
            {"fo_procs", "", 6},
            {"fo_period", "", 6},
            {"fo_sim_overhead", "", 6},
            {"opt_procs", "", 6},
            {"opt_period", "", 6},
            {"opt_sim_overhead", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
