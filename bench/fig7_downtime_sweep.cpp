// Reproduces Figure 7 (platform Hera, α = 0.1): impact of the downtime D
// (0 to 3 hours — replacement-based to repair-based restoration).
// Expected shape: the first-order pattern is D-independent (D is a
// lower-order term), the numerical P* decreases slightly with D, and the
// simulated overheads of both stay close because even a 3-hour downtime
// is small against the platform MTBF.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/util/units.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 7 — impact of downtime (Hera, alpha=0.1)",
      "P*, T*, simulated overhead vs downtime for scenarios 1, 3, 5",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("alpha", "0.1", "sequential fraction");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double alpha = args.option_double("alpha");
        auto pool = ctx.make_pool();
        const std::vector<model::Scenario> scenarios{
            model::Scenario::kS1, model::Scenario::kS3, model::Scenario::kS5};
        std::vector<std::vector<std::string>> csv_rows;

        for (const auto scenario : scenarios) {
          std::printf("== scenario %s (%s) ==\n",
                      model::scenario_name(scenario).c_str(),
                      model::scenario_description(scenario).c_str());
          io::Table table({"D (h)", "P* (FO)", "T* (FO)", "H sim (FO)",
                           "P* (opt)", "T* (opt)", "H sim (opt)"});
          for (double hours = 0.0; hours <= 3.0 + 1e-9; hours += 0.5) {
            const double d = util::hours(hours);
            const model::System sys =
                model::System::from_platform(platform, scenario, alpha, d);
            // First-order: by construction identical across D.
            const core::FirstOrderSolution fo = core::solve_first_order(sys);
            const double fo_procs = std::max(1.0, std::round(fo.procs));
            const sim::ReplicationResult sim_fo = sim::simulate_overhead(
                sys, {fo.period, fo_procs}, ctx.replication(), pool.get());
            // Numerical optimum: D-aware.
            core::AllocationSearchOptions aopt;
            aopt.max_procs = 1e8;
            const core::AllocationOptimum opt =
                core::optimal_allocation(sys, aopt);
            const sim::ReplicationResult sim_opt = sim::simulate_overhead(
                sys, {opt.period, opt.procs}, ctx.replication(), pool.get());
            table.add_row({util::format_sig(hours, 2),
                           util::format_sig(fo_procs, 4),
                           util::format_sig(fo.period, 4),
                           bench::mean_ci_cell(sim_fo.overhead, 4),
                           util::format_sig(opt.procs, 4),
                           util::format_sig(opt.period, 4),
                           bench::mean_ci_cell(sim_opt.overhead, 4)});
            csv_rows.push_back({model::scenario_name(scenario),
                                util::format_sig(hours, 4),
                                util::format_sig(fo_procs, 6),
                                util::format_sig(fo.period, 6),
                                util::format_sig(sim_fo.overhead.mean, 6),
                                util::format_sig(opt.procs, 6),
                                util::format_sig(opt.period, 6),
                                util::format_sig(sim_opt.overhead.mean, 6)});
          }
          std::printf("%s\n", table.to_string().c_str());
        }
        std::printf(
            "Expected shape (paper): first-order columns constant in D; "
            "numerical P* drifts down slightly with D; simulated overheads "
            "of the two stay close.\n");
        bench::maybe_write_csv(
            ctx,
            {"scenario", "downtime_h", "fo_procs", "fo_period",
             "fo_sim_overhead", "opt_procs", "opt_period",
             "opt_sim_overhead"},
            csv_rows);
      });
}
