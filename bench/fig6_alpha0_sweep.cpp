// Reproduces Figure 6 (platform Hera, α = 0): the perfectly parallel job,
// where no first-order optimum exists and everything is numerical.
// Expected asymptotics (paper, Section IV-B4): under scenario 1,
// P* ≈ Θ(λ^{-1/2}), T* ≈ Θ(λ^{-1/2}), H* ≈ Θ(λ^{1/2}); under scenarios
// 3 and 5, P* ≈ Θ(λ^{-1}), T* ≈ O(1), H* ≈ Θ(λ).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/stats/summary.hpp"
#include "ayd/util/strings.hpp"

namespace {

std::vector<double> log10_of(std::vector<double> xs) {
  for (double& x : xs) x = std::log10(x);
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 6 — perfectly parallel job (Hera, alpha=0)",
      "numerical P*, T*, overhead vs lambda_ind with alpha = 0",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-max", "1e13", "processor-count search cap");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.scenarios({model::Scenario::kS1, model::Scenario::kS3,
                        model::Scenario::kS5})
            .axis(engine::Axis::list("lambda",
                                     {1e-12, 1e-11, 1e-10, 1e-9, 1e-8}));

        engine::EvalSpec spec;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.search.max_procs = args.option_double("p-max");
        spec.replication = ctx.replication();
        const engine::SystemSpec base{platform, model::Scenario::kS1,
                                      /*alpha=*/0.0};

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys = engine::system_for_point(base, pt);
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              engine::Record r;
              r.set("scenario", model::scenario_name(*pt.scenario));
              r.set("lambda", pt.var("lambda"));
              r.set("opt_procs", ev.allocation->procs);
              r.set("opt_period", ev.allocation->period);
              r.set("opt_overhead", ev.allocation->overhead);
              r.set("sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead, 4));
              r.set("sim_overhead", ev.sim_numerical->overhead.mean);
              return r;
            });

        for (const auto& [name, group] :
             engine::group_by(records, "scenario")) {
          const model::Scenario scenario = model::scenario_from_string(name);
          const model::System sys = model::System::from_platform(
              platform, scenario, /*alpha=*/0.0);
          const auto orders = core::asymptotic_orders_alpha0(
              model::classify(sys.costs()).first_order_case);
          std::printf("== scenario %s (%s), alpha = 0 ==\n", name.c_str(),
                      model::scenario_description(scenario).c_str());
          engine::TableSink table({{"lambda", "", 3},
                                   {"P* (opt)", "opt_procs", 4},
                                   {"T* (opt)", "opt_period", 4},
                                   {"H pred (opt)", "opt_overhead", 4},
                                   {"H sim (opt)", "sim_cell"}});
          engine::emit(group, {&table});
          std::printf("%s", table.to_string().c_str());

          const auto log_l = log10_of(engine::collect(group, "lambda"));
          const auto p_fit = stats::linear_fit(
              log_l, log10_of(engine::collect(group, "opt_procs")));
          const auto h_fit = stats::linear_fit(
              log_l, log10_of(engine::collect(group, "opt_overhead")));
          std::printf(
              "fitted slopes: P* ~ lambda^%s (paper ~%s), H* ~ lambda^%s "
              "(paper ~%s)\n\n",
              util::format_sig(p_fit.slope, 3).c_str(),
              util::format_sig(orders.p_exponent, 3).c_str(),
              util::format_sig(h_fit.slope, 3).c_str(),
              util::format_sig(orders.h_exponent, 3).c_str());
        }
        std::printf(
            "Expected shape (paper): scenario 1 P* ~ lambda^{-1/2}, "
            "H ~ lambda^{1/2}; scenarios 3/5 P* ~ lambda^{-1}, T* ~ O(1), "
            "H ~ lambda.\n");

        const std::vector<engine::ColumnSpec> series{
            {"scenario"},
            {"lambda", "", 6},
            {"opt_procs", "", 6},
            {"opt_period", "", 6},
            {"opt_overhead", "", 6},
            {"sim_overhead", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
