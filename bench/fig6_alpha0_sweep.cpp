// Reproduces Figure 6 (platform Hera, α = 0): the perfectly parallel job,
// where no first-order optimum exists and everything is numerical.
// Expected asymptotics (paper, Section IV-B4): under scenario 1,
// P* ≈ Θ(λ^{-1/2}), T* ≈ Θ(λ^{-1/2}), H* ≈ Θ(λ^{1/2}); under scenarios
// 3 and 5, P* ≈ Θ(λ^{-1}), T* ≈ O(1), H* ≈ Θ(λ).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 6 — perfectly parallel job (Hera, alpha=0)",
      "numerical P*, T*, overhead vs lambda_ind with alpha = 0",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-max", "1e13", "processor-count search cap");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double p_max = args.option_double("p-max");
        auto pool = ctx.make_pool();
        const std::vector<double> lambdas{1e-12, 1e-11, 1e-10, 1e-9, 1e-8};
        const std::vector<model::Scenario> scenarios{
            model::Scenario::kS1, model::Scenario::kS3, model::Scenario::kS5};
        std::vector<std::vector<std::string>> csv_rows;

        for (const auto scenario : scenarios) {
          const model::System base = model::System::from_platform(
              platform, scenario, /*alpha=*/0.0);
          const auto orders = core::asymptotic_orders_alpha0(
              model::classify(base.costs()).first_order_case);
          std::printf("== scenario %s (%s), alpha = 0 ==\n",
                      model::scenario_name(scenario).c_str(),
                      model::scenario_description(scenario).c_str());
          io::Table table({"lambda", "P* (opt)", "T* (opt)", "H pred (opt)",
                           "H sim (opt)"});
          std::vector<double> log_l, log_p, log_h;
          for (const double lambda : lambdas) {
            const model::System sys = base.with_lambda(lambda);
            core::AllocationSearchOptions aopt;
            aopt.max_procs = p_max;
            const core::AllocationOptimum opt =
                core::optimal_allocation(sys, aopt);
            const sim::ReplicationResult sim = sim::simulate_overhead(
                sys, {opt.period, opt.procs}, ctx.replication(), pool.get());
            table.add_row({util::format_sig(lambda, 3),
                           util::format_sig(opt.procs, 4),
                           util::format_sig(opt.period, 4),
                           util::format_sig(opt.overhead, 4),
                           bench::mean_ci_cell(sim.overhead, 4)});
            log_l.push_back(std::log10(lambda));
            log_p.push_back(std::log10(opt.procs));
            log_h.push_back(std::log10(opt.overhead));
            csv_rows.push_back({model::scenario_name(scenario),
                                util::format_sig(lambda, 6),
                                util::format_sig(opt.procs, 6),
                                util::format_sig(opt.period, 6),
                                util::format_sig(opt.overhead, 6),
                                util::format_sig(sim.overhead.mean, 6)});
          }
          std::printf("%s", table.to_string().c_str());
          const auto p_fit = stats::linear_fit(log_l, log_p);
          const auto h_fit = stats::linear_fit(log_l, log_h);
          std::printf(
              "fitted slopes: P* ~ lambda^%s (paper ~%s), H* ~ lambda^%s "
              "(paper ~%s)\n\n",
              util::format_sig(p_fit.slope, 3).c_str(),
              util::format_sig(orders.p_exponent, 3).c_str(),
              util::format_sig(h_fit.slope, 3).c_str(),
              util::format_sig(orders.h_exponent, 3).c_str());
        }
        std::printf(
            "Expected shape (paper): scenario 1 P* ~ lambda^{-1/2}, "
            "H ~ lambda^{1/2}; scenarios 3/5 P* ~ lambda^{-1}, T* ~ O(1), "
            "H ~ lambda.\n");
        bench::maybe_write_csv(ctx,
                               {"scenario", "lambda", "opt_procs",
                                "opt_period", "opt_overhead",
                                "sim_overhead"},
                               csv_rows);
      });
}
