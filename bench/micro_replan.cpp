// Microbenchmark of the online re-planning loop (service/replan.hpp):
// sustained telemetry ingestion rate on a stationary stream (the steady
// state where refits run but drift never fires), re-plan publish latency
// on a regime-switch stream, and the cold vs warm-started period search
// the loop leans on. Emits BENCH_replan.json so the loop's perf
// trajectory is tracked across commits; CI greps the "REPLAN-BENCH"
// summary lines.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"

#include "ayd/core/sim_optimizer.hpp"
#include "ayd/io/json.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/service/replan.hpp"
#include "ayd/util/version.hpp"

namespace {

using namespace ayd;
using bench::seconds_since;

std::vector<double> draw_gaps(const model::FailureDistSpec& spec,
                              double rate, std::size_t n,
                              std::uint64_t seed, std::uint64_t stream) {
  const auto dist = spec.instantiate(rate);
  rng::RngStream rng(seed, stream);
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) gaps.push_back(dist->sample(rng));
  return gaps;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv, "Micro — online re-planning loop",
      "telemetry ingestion rate, re-plan publish latency, and cold vs "
      "warm-started period search; JSON written for the perf trajectory",
      [](cli::ArgParser& p) {
        p.add_option("out", "BENCH_replan.json",
                     "output path for the JSON record");
        p.add_option("events", "20000",
                     "stationary telemetry events in the ingestion phase");
        p.add_option("searches", "12",
                     "repeats of the cold/warm period-search phase");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const std::size_t events = args.option_uint("events");
        const std::size_t searches =
            std::max<std::size_t>(2, args.option_uint("searches"));
        const double rate = 1.0 / 3600.0;

        const model::System base =
            model::System::from_platform(model::hera(),
                                         model::Scenario::kS3)
                .with_failure_dist(model::FailureDistSpec::weibull(0.7))
                .with_lambda(rate);

        service::ReplanOptions opts;
        opts.procs = 1.0;
        opts.search.replication.patterns_per_replica =
            std::max<std::size_t>(ctx.patterns / 4, 16);
        opts.search.replication.seed = ctx.seed;
        opts.search.adaptive.min_replicas = 8;
        opts.search.adaptive.max_replicas = 64;
        opts.search.adaptive.ci_rel_tol = 0.2;

        auto pool = ctx.make_pool();

        // -- Ingestion phase: stationary stream, drift never fires. The
        // cost is the rolling window + the scheduled refits — the price
        // of *watching* telemetry, paid on every event of a live feed.
        {
          const std::vector<double> gaps = draw_gaps(
              model::FailureDistSpec::weibull(0.7), rate, events,
              ctx.seed, 1);
          service::Replanner replanner(base, opts, pool.get());
          (void)replanner.initial_record();
          const auto t0 = std::chrono::steady_clock::now();
          std::size_t replans = 0;
          for (const double g : gaps) {
            if (replanner.on_gap(g)) ++replans;
          }
          const double secs = seconds_since(t0);
          const double rate_eps = static_cast<double>(events) / secs;
          std::printf(
              "REPLAN-BENCH ingest   : %10.0f events/s (%zu events, "
              "%zu replans)\n",
              rate_eps, events, replans);

          // -- Re-plan latency: a shape switch forces real re-plans; the
          // interesting number is how long one on_gap() that publishes a
          // schedule takes (refit + warm-started search + record).
          const std::vector<double> after = draw_gaps(
              model::FailureDistSpec::weibull(1.4), rate, 3000, ctx.seed,
              2);
          std::vector<double> replan_ms;
          for (const double g : after) {
            const auto t = std::chrono::steady_clock::now();
            const bool published = replanner.on_gap(g).has_value();
            const double ms = seconds_since(t) * 1e3;
            if (published) replan_ms.push_back(ms);
          }
          double replan_mean = 0.0;
          for (const double ms : replan_ms) replan_mean += ms;
          replan_mean /= std::max<std::size_t>(1, replan_ms.size());
          std::printf(
              "REPLAN-BENCH publish  : %10.3f ms/replan (%zu replans "
              "over the regime switch)\n",
              replan_mean, replan_ms.size());

          // -- Cold vs warm search, measured head to head on the system
          // the loop deploys after the switch.
          const model::System shifted =
              base.with_failure_dist(model::FailureDistSpec::weibull(1.4));
          core::SimSearchOptions cold = opts.search;
          const core::SimPeriodOptimum anchor =
              core::sim_optimal_period(shifted, opts.procs, cold,
                                       pool.get());
          core::SimSearchOptions warm = opts.search;
          warm.warm_start = anchor.period;

          std::vector<double> cold_ms, warm_ms;
          int cold_evals = 0;
          int warm_evals = 0;
          for (std::size_t i = 0; i < searches; ++i) {
            // Vary the seed so repeats are honest work, not cache luck.
            cold.replication.seed = ctx.seed + i + 1;
            warm.replication.seed = ctx.seed + i + 1;
            auto t = std::chrono::steady_clock::now();
            const auto c =
                core::sim_optimal_period(shifted, opts.procs, cold,
                                         pool.get());
            cold_ms.push_back(seconds_since(t) * 1e3);
            cold_evals += c.evaluations;
            t = std::chrono::steady_clock::now();
            const auto w =
                core::sim_optimal_period(shifted, opts.procs, warm,
                                         pool.get());
            warm_ms.push_back(seconds_since(t) * 1e3);
            warm_evals += w.evaluations;
          }
          double cold_mean = 0.0, warm_mean = 0.0;
          for (const double ms : cold_ms) cold_mean += ms;
          for (const double ms : warm_ms) warm_mean += ms;
          cold_mean /= static_cast<double>(cold_ms.size());
          warm_mean /= static_cast<double>(warm_ms.size());
          const double speedup =
              warm_mean > 0.0 ? cold_mean / warm_mean : 0.0;
          std::printf(
              "REPLAN-BENCH search   : cold %8.3f ms (%d evals)  warm "
              "%8.3f ms (%d evals)  %.2fx\n",
              cold_mean, cold_evals, warm_mean, warm_evals, speedup);

          const std::string out_path = args.option("out");
          std::ofstream out(out_path);
          if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path.c_str());
            return;
          }
          io::JsonWriter json(out, /*pretty=*/true);
          json.begin_object();
          json.kv("benchmark", "replan_loop");
          json.kv("version", util::version_string());
          json.kv("seed", static_cast<std::uint64_t>(ctx.seed));
          json.kv("events", static_cast<std::uint64_t>(events));
          json.kv("ingest_events_per_s", rate_eps);
          json.kv("replans_over_switch",
                  static_cast<std::uint64_t>(replan_ms.size()));
          json.kv("replan_publish_ms_mean", replan_mean);
          json.kv("searches", static_cast<std::uint64_t>(searches));
          json.kv("cold_search_ms_mean", cold_mean);
          json.kv("warm_search_ms_mean", warm_mean);
          json.kv("warm_search_speedup", speedup);
          json.kv("cold_evaluations", static_cast<std::int64_t>(cold_evals));
          json.kv("warm_evaluations", static_cast<std::int64_t>(warm_evals));
          json.end_object();
          out << "\n";
          std::printf("(JSON record written to %s)\n", out_path.c_str());
        }
      });
}
