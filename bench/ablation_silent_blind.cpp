// Ablation: the cost of ignoring silent errors (the paper's motivation
// for the VC protocol). A "silent-blind" planner models only fail-stop
// errors (Zheng et al.-style) and picks the Young/Daly-like period
// T = sqrt((V+C)/(λf/2)); reality has both error sources. We simulate
// both that pattern and the VC-optimal one under the full error model and
// report the overhead penalty.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/baselines.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Ablation — cost of a silent-error-blind planner",
      "fail-stop-only period vs VC-optimal period under both error sources",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        auto pool = ctx.make_pool();
        io::Table table({"Platform", "P", "T blind", "T VC", "H sim blind",
                         "H sim VC", "penalty"});
        table.set_align(0, io::Align::kLeft);
        for (const auto& platform : model::all_platforms()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          const double p = platform.measured_procs;
          const double t_blind = core::silent_blind_period(sys, p);
          const core::PeriodOptimum vc = core::optimal_period(sys, p);
          const sim::ReplicationResult blind = sim::simulate_overhead(
              sys, {t_blind, p}, ctx.replication(), pool.get());
          const sim::ReplicationResult tuned = sim::simulate_overhead(
              sys, {vc.period, p}, ctx.replication(), pool.get());
          const double penalty_pct =
              100.0 * (blind.overhead.mean - tuned.overhead.mean) /
              tuned.overhead.mean;
          table.add_row({platform.name, util::format_sig(p, 4),
                         util::format_sig(t_blind, 4),
                         util::format_sig(vc.period, 4),
                         bench::mean_ci_cell(blind.overhead, 4),
                         bench::mean_ci_cell(tuned.overhead, 4),
                         util::format_sig(penalty_pct, 3) + "%"});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nThe blind period over-shoots (it underestimates the error "
            "rate), so every silent error wastes a longer period: the "
            "penalty grows with the platform's silent fraction.\n");
      });
}
