// Ablation: the cost of ignoring silent errors (the paper's motivation
// for the VC protocol). A "silent-blind" planner models only fail-stop
// errors (Zheng et al.-style) and picks the Young/Daly-like period
// T = sqrt((V+C)/(λf/2)); reality has both error sources. We simulate
// both that pattern and the VC-optimal one under the full error model and
// report the overhead penalty.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Ablation — cost of a silent-error-blind planner",
      "fail-stop-only period vs VC-optimal period under both error sources",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3", "Table III scenario (1-6)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.platforms(model::all_platforms());

        engine::EvalSpec spec;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.baseline_silent_blind = true;
        spec.replication = ctx.replication();

        // Only four grid points: keep the points serial and let each
        // simulation fan its replicas out over the whole pool instead.
        const auto records =
            engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(*pt.platform, scenario);
              const double p = pt.platform->measured_procs;
              const engine::PointEval ev =
                  engine::evaluate_point(sys, spec, p, pool.get());
              const sim::ReplicationResult blind = sim::simulate_overhead(
                  sys, {*ev.silent_blind_period, p}, ctx.replication(),
                  pool.get());
              const double penalty_pct =
                  100.0 * (blind.overhead.mean -
                           ev.sim_numerical->overhead.mean) /
                  ev.sim_numerical->overhead.mean;
              engine::Record r;
              r.set("Platform", pt.platform->name);
              r.set("P", p);
              r.set("T blind", *ev.silent_blind_period);
              r.set("T VC", ev.period->period);
              r.set("H sim blind", engine::mean_ci_cell(blind.overhead, 4));
              r.set("H sim VC",
                    engine::mean_ci_cell(ev.sim_numerical->overhead, 4));
              r.set("penalty", penalty_pct);
              return r;
            });

        engine::TableSink table({{"Platform", "", 4, "", io::Align::kLeft},
                                 {"P"},
                                 {"T blind"},
                                 {"T VC"},
                                 {"H sim blind"},
                                 {"H sim VC"},
                                 {"penalty", "", 3, "%"}});
        engine::emit(records, {&table});
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nThe blind period over-shoots (it underestimates the error "
            "rate), so every silent error wastes a longer period: the "
            "penalty grows with the platform's silent fraction.\n");
      });
}
