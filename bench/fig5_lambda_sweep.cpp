// Reproduces Figure 5 (platform Hera, α = 0.1): asymptotic behaviour of
// the optimal pattern as the individual error rate λ_ind decreases.
// The paper's headline: P* = Θ(λ^{-1/4}), T* = Θ(λ^{-1/2}) under a linear
// checkpoint cost (scenario 1), and P*, T* = Θ(λ^{-1/3}) under constant
// cost (scenarios 3 and 5). The harness prints the sweep and the fitted
// log-log slopes next to the theoretical exponents.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/rng/simd.hpp"
#include "ayd/stats/summary.hpp"
#include "ayd/util/strings.hpp"

namespace {

std::vector<double> log10_of(std::vector<double> xs) {
  for (double& x : xs) x = std::log10(x);
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 5 — impact of the error rate (Hera, alpha=0.1)",
      "P*, T*, overhead vs lambda_ind; fitted log-log slopes vs theory",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("alpha", "0.1", "sequential fraction");
        p.add_flag("crn",
                   "share one common-random-number variate pool across "
                   "all lambda points (one sampling pass per grid)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double alpha = args.option_double("alpha");
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.scenarios({model::Scenario::kS1, model::Scenario::kS3,
                        model::Scenario::kS5})
            .axis(engine::Axis::list("lambda",
                                     {1e-12, 1e-11, 1e-10, 1e-9, 1e-8}));

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.search.max_procs = 1e10;
        spec.replication = ctx.replication();
        sim::VariateCache crn_cache;  // outlives the grid run
        if (args.flag("crn")) spec.crn = &crn_cache;
        const engine::SystemSpec base{platform, model::Scenario::kS1, alpha};

        const auto sweep_t0 = std::chrono::steady_clock::now();
        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys = engine::system_for_point(base, pt);
              const engine::PointEval ev = engine::evaluate_point(sys, spec);
              engine::Record r;
              r.set("scenario", model::scenario_name(*pt.scenario));
              r.set("lambda", pt.var("lambda"));
              if (ev.first_order->has_optimum) {
                r.set("fo_procs", ev.first_order->procs);
                r.set("fo_period", ev.first_order->period);
                r.set("fo_overhead", ev.first_order->overhead);
              }
              r.set("opt_procs", ev.allocation->procs);
              r.set("opt_period", ev.allocation->period);
              r.set("sim_cell",
                    engine::mean_ci_cell(ev.sim_numerical->overhead, 4));
              r.set("sim_overhead", ev.sim_numerical->overhead.mean);
              return r;
            });

        for (const auto& [name, group] :
             engine::group_by(records, "scenario")) {
          const model::Scenario scenario = model::scenario_from_string(name);
          const model::System sys = model::System::from_platform(
              platform, scenario, alpha);
          const auto orders = core::asymptotic_orders(
              model::classify(sys.costs()).first_order_case);
          std::printf("== scenario %s (%s) ==\n", name.c_str(),
                      model::scenario_description(scenario).c_str());
          engine::TableSink table({{"lambda", "", 3},
                                   {"P* (FO)", "fo_procs", 4},
                                   {"P* (opt)", "opt_procs", 4},
                                   {"T* (FO)", "fo_period", 4},
                                   {"T* (opt)", "opt_period", 4},
                                   {"H pred (FO)", "fo_overhead", 4},
                                   {"H sim (opt)", "sim_cell"}});
          engine::emit(group, {&table});
          std::printf("%s", table.to_string().c_str());

          const auto log_l = log10_of(engine::collect(group, "lambda"));
          const auto p_fit = stats::linear_fit(
              log_l, log10_of(engine::collect(group, "opt_procs")));
          const auto t_fit = stats::linear_fit(
              log_l, log10_of(engine::collect(group, "opt_period")));
          std::printf(
              "fitted slopes (numerical optimum): P* ~ lambda^%s (theory "
              "%s), T* ~ lambda^%s (theory %s)\n\n",
              util::format_sig(p_fit.slope, 3).c_str(),
              util::format_sig(orders.p_exponent, 3).c_str(),
              util::format_sig(t_fit.slope, 3).c_str(),
              util::format_sig(orders.t_exponent, 3).c_str());
        }
        std::printf(
            "Expected shape (paper): scenario 1 slopes -1/4 and -1/2; "
            "scenarios 3 and 5 slopes -1/3 and -1/3; overhead tends to "
            "alpha as lambda -> 0.\n");

        // Grep-able speedup row, comparable across runs like the
        // committed bench/baselines/sim_baseline.csv anchors: sweep wall
        // time and replication throughput, plus the number of shared
        // variate pools when --crn made the sweep a single sampling pass
        // per (failure-dist shape, seed).
        {
          const double sweep_s = bench::seconds_since(sweep_t0);
          const auto opts = ctx.replication();
          const double replications =
              static_cast<double>(records.size()) *
              static_cast<double>(opts.replicas);
          std::printf(
              "FIG-BENCH fig5 [%s]: %zu points  %.3fs  %.0f replications/s"
              "%s  crn pools: %zu\n",
              rng::simd::tier_name(rng::simd::active_tier()), records.size(),
              sweep_s, replications / sweep_s,
              args.flag("crn") ? "  (one sampling pass per shared pool)"
                               : "",
              crn_cache.size());
        }

        const std::vector<engine::ColumnSpec> series{
            {"scenario"},
            {"lambda", "", 6},
            {"opt_procs", "", 6},
            {"opt_period", "", 6},
            {"sim_overhead", "", 6}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
