// Reproduces Figure 5 (platform Hera, α = 0.1): asymptotic behaviour of
// the optimal pattern as the individual error rate λ_ind decreases.
// The paper's headline: P* = Θ(λ^{-1/4}), T* = Θ(λ^{-1/2}) under a linear
// checkpoint cost (scenario 1), and P*, T* = Θ(λ^{-1/3}) under constant
// cost (scenarios 3 and 5). The harness prints the sweep and the fitted
// log-log slopes next to the theoretical exponents.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"
#include "ayd/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 5 — impact of the error rate (Hera, alpha=0.1)",
      "P*, T*, overhead vs lambda_ind; fitted log-log slopes vs theory",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("alpha", "0.1", "sequential fraction");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double alpha = args.option_double("alpha");
        auto pool = ctx.make_pool();
        const std::vector<double> lambdas{1e-12, 1e-11, 1e-10, 1e-9, 1e-8};
        const std::vector<model::Scenario> scenarios{
            model::Scenario::kS1, model::Scenario::kS3, model::Scenario::kS5};
        std::vector<std::vector<std::string>> csv_rows;

        for (const auto scenario : scenarios) {
          const model::System base =
              model::System::from_platform(platform, scenario, alpha);
          const auto orders = core::asymptotic_orders(
              model::classify(base.costs()).first_order_case);
          std::printf("== scenario %s (%s) ==\n",
                      model::scenario_name(scenario).c_str(),
                      model::scenario_description(scenario).c_str());
          io::Table table({"lambda", "P* (FO)", "P* (opt)", "T* (FO)",
                           "T* (opt)", "H pred (FO)", "H sim (opt)"});
          std::vector<double> log_l, log_p, log_t;
          for (const double lambda : lambdas) {
            const model::System sys = base.with_lambda(lambda);
            core::AllocationSearchOptions aopt;
            aopt.max_procs = 1e10;
            const core::AllocationOptimum opt =
                core::optimal_allocation(sys, aopt);
            const core::FirstOrderSolution fo = core::solve_first_order(sys);
            const sim::ReplicationResult sim = sim::simulate_overhead(
                sys, {opt.period, opt.procs}, ctx.replication(), pool.get());
            table.add_row(
                {util::format_sig(lambda, 3),
                 fo.has_optimum ? util::format_sig(fo.procs, 4)
                                : std::string(bench::kNoValue),
                 util::format_sig(opt.procs, 4),
                 fo.has_optimum ? util::format_sig(fo.period, 4)
                                : std::string(bench::kNoValue),
                 util::format_sig(opt.period, 4),
                 fo.has_optimum ? util::format_sig(fo.overhead, 4)
                                : std::string(bench::kNoValue),
                 bench::mean_ci_cell(sim.overhead, 4)});
            log_l.push_back(std::log10(lambda));
            log_p.push_back(std::log10(opt.procs));
            log_t.push_back(std::log10(opt.period));
            csv_rows.push_back({model::scenario_name(scenario),
                                util::format_sig(lambda, 6),
                                util::format_sig(opt.procs, 6),
                                util::format_sig(opt.period, 6),
                                util::format_sig(sim.overhead.mean, 6)});
          }
          std::printf("%s", table.to_string().c_str());
          const auto p_fit = stats::linear_fit(log_l, log_p);
          const auto t_fit = stats::linear_fit(log_l, log_t);
          std::printf(
              "fitted slopes (numerical optimum): P* ~ lambda^%s (theory "
              "%s), T* ~ lambda^%s (theory %s)\n\n",
              util::format_sig(p_fit.slope, 3).c_str(),
              util::format_sig(orders.p_exponent, 3).c_str(),
              util::format_sig(t_fit.slope, 3).c_str(),
              util::format_sig(orders.t_exponent, 3).c_str());
        }
        std::printf(
            "Expected shape (paper): scenario 1 slopes -1/4 and -1/2; "
            "scenarios 3 and 5 slopes -1/3 and -1/3; overhead tends to "
            "alpha as lambda -> 0.\n");
        bench::maybe_write_csv(ctx,
                               {"scenario", "lambda", "opt_procs",
                                "opt_period", "sim_overhead"},
                               csv_rows);
      });
}
