// Reproduces Figure 3 (platform Hera, α = 0.1): behaviour of the optimal
// pattern as a function of a *fixed* processor allocation P.
//   (a) first-order optimal period T*_P (Theorem 1) per scenario;
//   (b) simulated execution overhead at T*_P;
//   (c) overhead difference between the first-order period and the
//       numerically optimal period (in % of the optimal overhead).
// Expected shape: T*_P decreases with P (flat for scenarios 1-2 whose
// cost grows as cP); overhead is U-shaped in P; the FO-vs-optimal gap
// stays within ~0.2%.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 3 — impact of processor allocation (Hera)",
      "T*_P, simulated overhead, and FO-vs-optimal gap across P",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-min", "200", "smallest processor count");
        p.add_option("p-max", "1400", "largest processor count");
        p.add_option("p-step", "200", "sweep step");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        const double p_min = args.option_double("p-min");
        const double p_max = args.option_double("p-max");
        const double p_step = args.option_double("p-step");
        auto pool = ctx.make_pool();
        const auto scenarios = model::all_scenarios();

        std::vector<std::string> header{"P"};
        for (const auto s : scenarios) header.push_back("scn " + model::scenario_name(s));

        io::Table period_table(header);
        io::Table overhead_table(header);
        io::Table gap_table(header);
        std::vector<std::vector<std::string>> csv_rows;

        for (double p = p_min; p <= p_max + 1e-9; p += p_step) {
          std::vector<std::string> period_row{util::format_sig(p, 5)};
          std::vector<std::string> overhead_row = period_row;
          std::vector<std::string> gap_row = period_row;
          for (const auto scenario : scenarios) {
            const model::System sys =
                model::System::from_platform(platform, scenario);
            const double t_fo = core::optimal_period_first_order(sys, p);
            const core::PeriodOptimum num = core::optimal_period(sys, p);
            const sim::ReplicationResult sim = sim::simulate_overhead(
                sys, {t_fo, p}, ctx.replication(), pool.get());
            const double h_fo = core::pattern_overhead(sys, {t_fo, p});
            const double gap_pct =
                100.0 * (h_fo - num.overhead) / num.overhead;
            period_row.push_back(util::format_sig(t_fo, 4));
            overhead_row.push_back(bench::mean_ci_cell(sim.overhead, 4));
            gap_row.push_back(util::format_sig(gap_pct, 2) + "%");
            csv_rows.push_back({util::format_sig(p, 6),
                                model::scenario_name(scenario),
                                util::format_sig(t_fo, 6),
                                util::format_sig(sim.overhead.mean, 6),
                                util::format_sig(gap_pct, 4)});
          }
          period_table.add_row(period_row);
          overhead_table.add_row(overhead_row);
          gap_table.add_row(gap_row);
        }

        std::printf("(a) first-order optimal period T*_P (s), %s:\n%s\n",
                    platform.name.c_str(),
                    period_table.to_string().c_str());
        std::printf("(b) simulated execution overhead at T*_P:\n%s\n",
                    overhead_table.to_string().c_str());
        std::printf(
            "(c) overhead difference, first-order vs numerically optimal "
            "period (%% of optimal; paper reports <= 0.2%%):\n%s",
            gap_table.to_string().c_str());
        bench::maybe_write_csv(
            ctx, {"procs", "scenario", "fo_period", "sim_overhead",
                  "gap_pct"},
            csv_rows);
      });
}
