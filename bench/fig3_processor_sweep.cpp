// Reproduces Figure 3 (platform Hera, α = 0.1): behaviour of the optimal
// pattern as a function of a *fixed* processor allocation P.
//   (a) first-order optimal period T*_P (Theorem 1) per scenario;
//   (b) simulated execution overhead at T*_P;
//   (c) overhead difference between the first-order period and the
//       numerically optimal period (in % of the optimal overhead).
// Expected shape: T*_P decreases with P (flat for scenarios 1-2 whose
// cost grows as cP); overhead is U-shaped in P; the FO-vs-optimal gap
// stays within ~0.2%.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/overhead.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Figure 3 — impact of processor allocation (Hera)",
      "T*_P, simulated overhead, and FO-vs-optimal gap across P",
      [](cli::ArgParser& p) {
        p.add_option("platform", "hera", "platform preset to sweep");
        p.add_option("p-min", "200", "smallest processor count");
        p.add_option("p-max", "1400", "largest processor count");
        p.add_option("p-step", "200", "sweep step");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Platform platform =
            model::platform_by_name(args.option("platform"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.axis(engine::Axis::step("procs", args.option_double("p-min"),
                                     args.option_double("p-max"),
                                     args.option_double("p-step")))
            .scenarios(model::all_scenarios());

        engine::EvalSpec spec;
        spec.first_order = true;
        spec.numerical = true;
        spec.simulate_first_order = true;
        spec.replication = ctx.replication();

        const auto records =
            engine::run_grid(grid, pool.get(), [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(platform, *pt.scenario);
              const double p = pt.var("procs");
              const engine::PointEval ev =
                  engine::evaluate_point(sys, spec, p);
              const double h_fo =
                  core::pattern_overhead(sys, {*ev.fo_period, p});
              engine::Record r;
              r.set("procs", p);
              r.set("scenario", model::scenario_name(*pt.scenario));
              r.set("scn_label",
                    "scn " + model::scenario_name(*pt.scenario));
              r.set("fo_period", *ev.fo_period);
              r.set("sim_cell",
                    engine::mean_ci_cell(ev.sim_first_order->overhead, 4));
              r.set("sim_overhead", ev.sim_first_order->overhead.mean);
              r.set("gap_pct", 100.0 * (h_fo - ev.period->overhead) /
                                   ev.period->overhead);
              return r;
            });

        const io::Table period_table =
            engine::pivot(records, {"P", "procs", 5}, "scn_label",
                          {"", "fo_period", 4});
        const io::Table overhead_table = engine::pivot(
            records, {"P", "procs", 5}, "scn_label", {"", "sim_cell"});
        const io::Table gap_table =
            engine::pivot(records, {"P", "procs", 5}, "scn_label",
                          {"", "gap_pct", 2, "%"});

        std::printf("(a) first-order optimal period T*_P (s), %s:\n%s\n",
                    platform.name.c_str(),
                    period_table.to_string().c_str());
        std::printf("(b) simulated execution overhead at T*_P:\n%s\n",
                    overhead_table.to_string().c_str());
        std::printf(
            "(c) overhead difference, first-order vs numerically optimal "
            "period (%% of optimal; paper reports <= 0.2%%):\n%s",
            gap_table.to_string().c_str());

        const std::vector<engine::ColumnSpec> series{
            {"procs", "", 6},
            {"scenario"},
            {"fo_period", "", 6},
            {"sim_overhead", "", 6},
            {"gap_pct", "", 4}};
        engine::CsvSink csv(ctx.csv_path, series);
        engine::JsonlSink jsonl(ctx.jsonl_path, series);
        engine::emit(records, {&csv, &jsonl});
      });
}
