// Microbenchmark of the planning service: cold-miss vs warm-hit latency
// of memoised `optimize --simulate` answers, and sustained throughput +
// hit rate under a Zipf-like repeated workload (the shape of real
// planning traffic: a few hot scenarios dominate, a long tail of
// one-offs). Emits BENCH_service.json so the service's perf trajectory
// is tracked across commits; CI greps the "SERVICE-BENCH" summary lines
// and fails the warm/cold acceptance when memoisation stops paying.
//
// Requests are issued through PlanningService::handle_line — the same
// code path `ayd serve` drives — so parse, canonicalisation, cache, and
// reply assembly are all inside the measured latency.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"

#include "ayd/io/json.hpp"
#include "ayd/rng/stream.hpp"
#include "ayd/service/server.hpp"
#include "ayd/service/shm_transport.hpp"
#include "ayd/util/version.hpp"

namespace {

using namespace ayd;
using bench::seconds_since;

/// One distinct planning scenario: a fixed-P robust-optimum request
/// under bursty Weibull failures (the expensive, cache-worthy op).
std::string make_request(int id, double procs, std::uint64_t seed,
                         std::size_t patterns, std::size_t max_reps) {
  std::ostringstream os;
  os << "{\"op\":\"optimize\",\"id\":" << id
     << ",\"platform\":\"hera\",\"scenario\":3,\"procs\":" << procs
     << ",\"failure-dist\":\"weibull:k=0.7\",\"simulate\":true"
     << ",\"runs\":16,\"patterns\":" << patterns << ",\"seed\":" << seed
     << ",\"ci-rel-tol\":0.02,\"max-reps\":" << max_reps << "}";
  return os.str();
}

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_experiment_main(
      argc, argv, "Micro — planning-service cache (cold vs warm, Zipf)",
      "cold-miss vs warm-hit latency of memoised optimize answers and "
      "throughput/hit-rate under a Zipf-like repeated workload; JSON "
      "written for the perf trajectory",
      [](cli::ArgParser& p) {
        p.add_option("out", "BENCH_service.json",
                     "output path for the JSON record");
        p.add_option("scenarios", "16",
                     "distinct cache-worthy scenarios (procs ladder)");
        p.add_option("zipf-requests", "400",
                     "requests in the Zipf-like throughput phase");
        p.add_option("cache-entries", "4096",
                     "memo-cache capacity for the service under test");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const int scenarios = static_cast<int>(args.option_int("scenarios"));
        const int zipf_requests =
            static_cast<int>(args.option_int("zipf-requests"));
        // Keep one cold evaluation in the milliseconds: small replica
        // floor, ctx-scaled patterns, tight cap.
        const std::size_t patterns = std::max<std::size_t>(ctx.patterns, 8);
        const std::size_t max_reps = 160;

        std::vector<std::string> requests;
        requests.reserve(static_cast<std::size_t>(scenarios));
        for (int i = 0; i < scenarios; ++i) {
          // A geometric procs ladder: every request is a distinct
          // canonical scenario.
          const double procs = 64.0 * std::pow(1.35, i);
          requests.push_back(
              make_request(i, std::round(procs), ctx.seed, patterns,
                           max_reps));
        }

        service::ServiceOptions options;
        options.threads = ctx.threads;
        options.cache_entries =
            static_cast<std::size_t>(args.option_uint("cache-entries"));
        service::PlanningService service(options);

        // -- Cold pass: every request is a miss. --------------------------
        std::vector<double> cold_ms;
        cold_ms.reserve(requests.size());
        std::vector<std::string> cold_replies;
        for (const std::string& req : requests) {
          const auto t0 = std::chrono::steady_clock::now();
          cold_replies.push_back(service.handle_line(req));
          cold_ms.push_back(seconds_since(t0) * 1e3);
        }

        // -- Warm pass: every request is a hit, replies byte-identical. ---
        std::vector<double> warm_ms;
        warm_ms.reserve(requests.size());
        std::size_t identical = 0;
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          const std::string reply = service.handle_line(requests[i]);
          warm_ms.push_back(seconds_since(t0) * 1e3);
          if (reply == cold_replies[i]) ++identical;
        }

        const double cold_mean = mean_of(cold_ms);
        const double warm_mean = mean_of(warm_ms);
        const double speedup = warm_mean > 0.0 ? cold_mean / warm_mean : 0.0;
        std::printf("SERVICE-BENCH cold-miss: %9.3f ms/req (median %.3f)\n",
                    cold_mean, median_of(cold_ms));
        std::printf(
            "SERVICE-BENCH warm-hit : %9.3f ms/req (median %.3f, %.0fx "
            "faster, %zu/%zu replies byte-identical)\n",
            warm_mean, median_of(warm_ms), speedup, identical,
            requests.size());

        // -- Zipf-like phase: rank-r scenario drawn with weight 1/(r+1);
        // a fresh service so the hit rate is the workload's, not the
        // warm pass's. Drawn deterministically from the experiment seed.
        service::PlanningService zipf_service(options);
        std::vector<double> cumulative(requests.size());
        double total = 0.0;
        for (std::size_t r = 0; r < requests.size(); ++r) {
          total += 1.0 / static_cast<double>(r + 1);
          cumulative[r] = total;
        }
        rng::RngStream rng(ctx.seed, /*stream=*/0);
        std::ostringstream session;
        for (int i = 0; i < zipf_requests; ++i) {
          const double u = rng.next_uniform01() * total;
          const auto it =
              std::lower_bound(cumulative.begin(), cumulative.end(), u);
          const std::size_t rank = static_cast<std::size_t>(
              std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                       static_cast<std::ptrdiff_t>(
                                           requests.size() - 1)));
          session << requests[rank] << "\n";
        }
        std::istringstream in(session.str());
        std::ostringstream replies;
        const auto t0 = std::chrono::steady_clock::now();
        if (!zipf_service.serve(in, replies)) {
          std::fprintf(stderr, "error: zipf session reply write failed\n");
          return;
        }
        const double zipf_seconds = seconds_since(t0);
        const service::CacheStats stats = zipf_service.cache_stats();
        const double throughput =
            static_cast<double>(zipf_requests) / zipf_seconds;
        const double hit_rate =
            static_cast<double>(stats.hits + stats.coalesced) /
            static_cast<double>(std::max<std::uint64_t>(
                1, stats.hits + stats.coalesced + stats.misses));
        std::printf(
            "SERVICE-BENCH zipf     : %9.0f req/s over %d requests "
            "(hit rate %.1f%%, %llu misses, %llu evictions)\n",
            throughput, zipf_requests, 100.0 * hit_rate,
            static_cast<unsigned long long>(stats.misses),
            static_cast<unsigned long long>(stats.evictions));

        // -- Persistent-tier phase: cold (compute + write-behind), then a
        // simulated restart (fresh service, same --cache-dir, empty RAM
        // tier) for warm-disk hits, then warm-ram on the same instance.
        // The interesting ratio is warm-disk vs cold: a disk hit replaces
        // a simulated optimisation with one read + CRC + promote, so it
        // must land orders of magnitude under the cold mean while staying
        // byte-identical across the restart.
        namespace fs = std::filesystem;
        const fs::path store_dir =
            fs::temp_directory_path() / "ayd_bench_store";
        std::error_code ec;
        fs::remove_all(store_dir, ec);
        service::ServiceOptions persist_options = options;
        persist_options.cache_dir = store_dir.string();

        std::vector<double> pcold_ms, pdisk_ms, pram_ms;
        pcold_ms.reserve(requests.size());
        pdisk_ms.reserve(requests.size());
        pram_ms.reserve(requests.size());
        std::vector<std::string> pcold_replies;
        std::size_t restart_identical = 0;
        {
          service::PlanningService first(persist_options);
          for (const std::string& req : requests) {
            const auto t = std::chrono::steady_clock::now();
            pcold_replies.push_back(first.handle_line(req));
            pcold_ms.push_back(seconds_since(t) * 1e3);
          }
        }  // destructor = process exit: nothing but the store survives
        service::PlanningService restarted(persist_options);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const auto t = std::chrono::steady_clock::now();
          const std::string reply = restarted.handle_line(requests[i]);
          pdisk_ms.push_back(seconds_since(t) * 1e3);
          if (reply == pcold_replies[i]) ++restart_identical;
        }
        for (const std::string& req : requests) {
          const auto t = std::chrono::steady_clock::now();
          (void)restarted.handle_line(req);
          pram_ms.push_back(seconds_since(t) * 1e3);
        }
        const service::CacheStats pstats = restarted.cache_stats();
        const double pcold_mean = mean_of(pcold_ms);
        const double pdisk_mean = mean_of(pdisk_ms);
        const double pram_mean = mean_of(pram_ms);
        const double disk_speedup =
            pdisk_mean > 0.0 ? pcold_mean / pdisk_mean : 0.0;
        std::printf(
            "SERVICE-BENCH persist-cold     : %9.3f ms/req (median %.3f)\n",
            pcold_mean, median_of(pcold_ms));
        std::printf(
            "SERVICE-BENCH persist-warm-disk: %9.3f ms/req (median %.3f, "
            "%.0fx faster, %zu/%zu replies byte-identical across restart, "
            "%llu disk hits)\n",
            pdisk_mean, median_of(pdisk_ms), disk_speedup, restart_identical,
            requests.size(),
            static_cast<unsigned long long>(pstats.disk_hits));
        std::printf(
            "SERVICE-BENCH persist-warm-ram : %9.3f ms/req (median %.3f)\n",
            pram_mean, median_of(pram_ms));
        fs::remove_all(store_dir, ec);

        // -- Shared-memory multi-client phase: the same warm answers
        // served over `ayd serve --shm`'s segment. One client first
        // pins byte-identity against the pipe path (handle_line) and
        // measures warm-hit round-trip latency through the rings; then
        // client fleets of growing size share the segment to chart how
        // throughput scales with concurrent local clients.
        service::PlanningService shm_service(options);
        std::vector<std::string> pipe_replies;
        pipe_replies.reserve(requests.size());
        for (const std::string& req : requests) {
          pipe_replies.push_back(shm_service.handle_line(req));  // warm up
        }
        const std::string shm_name = "bench" + std::to_string(::getpid());
        service::ShmServer shm_server(shm_name, shm_service);

        std::size_t shm_identical = 0;
        std::vector<double> shm_us;
        shm_us.reserve(requests.size());
        {
          service::ShmClient client(shm_name);
          for (std::size_t i = 0; i < requests.size(); ++i) {
            const auto t = std::chrono::steady_clock::now();
            const std::string reply = client.call(requests[i]);
            shm_us.push_back(seconds_since(t) * 1e6);
            if (reply == pipe_replies[i]) ++shm_identical;
          }
        }
        std::printf(
            "SERVICE-BENCH shm-warm-hit: %9.1f us/req (median %.1f, "
            "%zu/%zu replies byte-identical to the pipe transport)\n",
            mean_of(shm_us), median_of(shm_us), shm_identical,
            requests.size());

        const int kFleets[] = {1, 2, 4, 8};
        const int calls_per_client = 400;
        std::vector<double> fleet_rps;
        for (const int clients : kFleets) {
          std::vector<std::thread> fleet;
          fleet.reserve(static_cast<std::size_t>(clients));
          const auto t = std::chrono::steady_clock::now();
          for (int c = 0; c < clients; ++c) {
            fleet.emplace_back([&, c] {
              service::ShmClient client(shm_name);
              for (int i = 0; i < calls_per_client; ++i) {
                (void)client.call(
                    requests[static_cast<std::size_t>(c + i) %
                             requests.size()]);
              }
            });
          }
          for (auto& worker : fleet) worker.join();
          const double rps =
              static_cast<double>(clients * calls_per_client) /
              seconds_since(t);
          fleet_rps.push_back(rps);
          std::printf(
              "SERVICE-BENCH shm-clients-%d: %9.0f req/s "
              "(%d clients x %d warm requests)\n",
              clients, rps, clients, calls_per_client);
        }
        shm_server.stop();

        const std::string out_path = args.option("out");
        std::ofstream out(out_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
          return;
        }
        io::JsonWriter json(out, /*pretty=*/true);
        json.begin_object();
        json.kv("benchmark", "service_cache");
        json.kv("version", util::version_string());
        json.kv("scenarios", static_cast<std::int64_t>(scenarios));
        json.kv("patterns_per_replica",
                static_cast<std::uint64_t>(patterns));
        json.kv("seed", static_cast<std::uint64_t>(ctx.seed));
        json.kv("threads", static_cast<std::uint64_t>(options.threads));
        json.kv("cache_entries",
                static_cast<std::uint64_t>(options.cache_entries));
        json.kv("cold_miss_ms_mean", cold_mean);
        json.kv("cold_miss_ms_median", median_of(cold_ms));
        json.kv("warm_hit_ms_mean", warm_mean);
        json.kv("warm_hit_ms_median", median_of(warm_ms));
        json.kv("warm_speedup", speedup);
        json.kv("warm_replies_byte_identical",
                static_cast<std::uint64_t>(identical));
        json.kv("zipf_requests", static_cast<std::int64_t>(zipf_requests));
        json.kv("zipf_throughput_rps", throughput);
        json.kv("zipf_hit_rate", hit_rate);
        json.kv("zipf_misses", stats.misses);
        json.kv("zipf_coalesced", stats.coalesced);
        json.kv("zipf_evictions", stats.evictions);
        json.kv("persist_cold_ms_mean", pcold_mean);
        json.kv("persist_warm_disk_ms_mean", pdisk_mean);
        json.kv("persist_warm_disk_ms_median", median_of(pdisk_ms));
        json.kv("persist_warm_ram_ms_mean", pram_mean);
        json.kv("disk_speedup", disk_speedup);
        json.kv("disk_hits", pstats.disk_hits);
        json.kv("restart_replies_byte_identical",
                static_cast<std::uint64_t>(restart_identical));
        json.kv("shm_replies_byte_identical",
                static_cast<std::uint64_t>(shm_identical));
        json.kv("shm_warm_hit_us_mean", mean_of(shm_us));
        json.kv("shm_warm_hit_us_median", median_of(shm_us));
        for (std::size_t f = 0; f < fleet_rps.size(); ++f) {
          json.kv("shm_rps_" + std::to_string(kFleets[f]), fleet_rps[f]);
        }
        json.end_object();
        out << "\n";
        std::printf("(JSON record written to %s)\n", out_path.c_str());
      });
}
