// Google-benchmark microbenchmarks for the analytic core: formula
// evaluation and optimiser latency. These guard the costs that the sweep
// harnesses (Figures 2-7) pay thousands of times.

#include <benchmark/benchmark.h>

#include "ayd/core/baselines.hpp"
#include "ayd/core/expected_time.hpp"
#include "ayd/core/first_order.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/core/overhead.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"

namespace {

using ayd::core::Pattern;
using ayd::model::Scenario;
using ayd::model::System;

const System& hera_s1() {
  static const System sys =
      System::from_platform(ayd::model::hera(), Scenario::kS1);
  return sys;
}

void BM_ExpectedPatternTime(benchmark::State& state) {
  const System& sys = hera_s1();
  const Pattern pattern{3000.0, 512.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::expected_pattern_time(sys, pattern));
  }
}
BENCHMARK(BM_ExpectedPatternTime);

void BM_ExpectedPatternTimeDirect(benchmark::State& state) {
  const System& sys = hera_s1();
  const Pattern pattern{3000.0, 512.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ayd::core::expected_pattern_time_direct(sys, pattern));
  }
}
BENCHMARK(BM_ExpectedPatternTimeDirect);

void BM_LogExpectedPatternTime(benchmark::State& state) {
  const System& sys = hera_s1();
  const Pattern pattern{3000.0, 512.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ayd::core::log_expected_pattern_time(sys, pattern));
  }
}
BENCHMARK(BM_LogExpectedPatternTime);

void BM_LogExpectedPatternTimeOverflowRegime(benchmark::State& state) {
  const System& sys = hera_s1();
  const Pattern pattern{1e6, 1e12};  // exercises the log-space branch
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ayd::core::log_expected_pattern_time(sys, pattern));
  }
}
BENCHMARK(BM_LogExpectedPatternTimeOverflowRegime);

void BM_PatternOverhead(benchmark::State& state) {
  const System& sys = hera_s1();
  const Pattern pattern{3000.0, 512.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::pattern_overhead(sys, pattern));
  }
}
BENCHMARK(BM_PatternOverhead);

void BM_SolveFirstOrder(benchmark::State& state) {
  const System& sys = hera_s1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::solve_first_order(sys));
  }
}
BENCHMARK(BM_SolveFirstOrder);

void BM_OptimalPeriod(benchmark::State& state) {
  const System& sys = hera_s1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::optimal_period(sys, 512.0));
  }
}
BENCHMARK(BM_OptimalPeriod);

void BM_OptimalAllocation(benchmark::State& state) {
  const System& sys = hera_s1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::optimal_allocation(sys));
  }
}
BENCHMARK(BM_OptimalAllocation);

void BM_JinRelaxation(benchmark::State& state) {
  const System& sys = hera_s1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ayd::core::jin_relaxation(sys));
  }
}
BENCHMARK(BM_JinRelaxation);

}  // namespace

BENCHMARK_MAIN();
