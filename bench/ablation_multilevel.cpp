// Ablation / extension: multi-verification patterns (paper §V "multi-level
// resilience protocols" future work; reference [2] of the paper).
//
// For each platform, at its measured processor count, compares the base
// VC optimum (one verification per checkpoint, Theorem 1) against
// MULTIPATTERN(T, P, n) with the first-order plan n* = sqrt(λs·C/((λf+λs)V))
// and with the numerically exact (T, n) optimum. On silent-dominated
// platforms intermediate verifications shorten the rollback after a silent
// error and beat the single-verification optimum.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

#include "ayd/core/multi_verification.hpp"
#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — multi-verification patterns (paper SV future work)",
      "base VC protocol vs n intermediate verifications per checkpoint",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3",
                     "Table III scenario (1-6; constant-cost scenarios "
                     "benefit most)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        auto pool = ctx.make_pool();

        engine::GridSpec grid;
        grid.platforms(model::all_platforms());

        engine::EvalSpec spec;
        spec.numerical = true;
        spec.simulate_numerical = true;
        spec.replication = ctx.replication();

        // Only four grid points: keep the points serial and let each
        // simulation fan its replicas out over the whole pool instead.
        const auto records =
            engine::run_grid(grid, nullptr, [&](const engine::Point& pt) {
              const model::System sys =
                  model::System::from_platform(*pt.platform, scenario);
              const double p = pt.platform->measured_procs;

              // Base VC protocol: numerically optimal single-verif T.
              const engine::PointEval base =
                  engine::evaluate_point(sys, spec, p, pool.get());

              // Multi-verification: first-order plan and exact optimum.
              const core::VerificationPlan plan =
                  core::optimal_verification_plan(sys, p);
              const core::MultiOptimum multi =
                  core::optimal_multi_pattern(sys, p);
              const sim::ReplicationResult multi_sim =
                  sim::simulate_multi_overhead(
                      sys, {multi.period, p, multi.segments},
                      ctx.replication(), pool.get());

              const double gain = (base.sim_numerical->overhead.mean -
                                   multi_sim.overhead.mean) /
                                  base.sim_numerical->overhead.mean;
              engine::Record r;
              r.set("Platform", pt.platform->name);
              r.set("n* (FO)", std::to_string(plan.segments));
              r.set("n* (opt)", std::to_string(multi.segments));
              r.set("T* (n=1)", base.period->period);
              r.set("T* (n*)", multi.period);
              r.set("H sim (n=1)",
                    engine::mean_ci_cell(base.sim_numerical->overhead, 4));
              r.set("H sim (n*)",
                    engine::mean_ci_cell(multi_sim.overhead, 4));
              r.set("gain", 100.0 * gain);
              return r;
            });

        engine::TableSink table({{"Platform", "", 4, "", io::Align::kLeft},
                                 {"n* (FO)"},
                                 {"n* (opt)"},
                                 {"T* (n=1)", "", 4},
                                 {"T* (n*)", "", 4},
                                 {"H sim (n=1)"},
                                 {"H sim (n*)"},
                                 {"gain", "", 3, "%"}});
        engine::emit(records, {&table});
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nWith n = 1 the multi-pattern reduces to Theorem 1 exactly; "
            "n* grows with the silent fraction s and with the checkpoint-"
            "to-verification cost ratio C/V. Gains are modest at alpha = "
            "0.1 (resilience is ~10%% of the overhead) but the optimal n* "
            "shows when intermediate verifications pay.\n");
      });
}
