// Ablation / extension: multi-verification patterns (paper §V "multi-level
// resilience protocols" future work; reference [2] of the paper).
//
// For each platform, at its measured processor count, compares the base
// VC optimum (one verification per checkpoint, Theorem 1) against
// MULTIPATTERN(T, P, n) with the first-order plan n* = sqrt(λs·C/((λf+λs)V))
// and with the numerically exact (T, n) optimum. On silent-dominated
// platforms intermediate verifications shorten the rollback after a silent
// error and beat the single-verification optimum.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/core/first_order.hpp"
#include "ayd/core/multi_verification.hpp"
#include "ayd/core/optimizer.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/sim/multi_protocol.hpp"
#include "ayd/sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv,
      "Ablation — multi-verification patterns (paper SV future work)",
      "base VC protocol vs n intermediate verifications per checkpoint",
      [](cli::ArgParser& p) {
        p.add_option("scenario", "3",
                     "Table III scenario (1-6; constant-cost scenarios "
                     "benefit most)");
      },
      [](const cli::ArgParser& args, const cli::ExperimentContext& ctx) {
        const model::Scenario scenario =
            model::scenario_from_string(args.option("scenario"));
        const auto pool = ctx.make_pool();

        io::Table table({"Platform", "n* (FO)", "n* (opt)", "T* (n=1)",
                         "T* (n*)", "H sim (n=1)", "H sim (n*)", "gain"});
        table.set_align(0, io::Align::kLeft);

        for (const auto& platform : model::all_platforms()) {
          const model::System sys =
              model::System::from_platform(platform, scenario);
          const double p = platform.measured_procs;

          // Base VC protocol: numerically optimal single-verification T.
          const core::PeriodOptimum base = core::optimal_period(sys, p);
          const sim::ReplicationResult base_sim = sim::simulate_overhead(
              sys, {base.period, p}, ctx.replication(), pool.get());

          // Multi-verification: first-order plan and exact optimum.
          const core::VerificationPlan plan =
              core::optimal_verification_plan(sys, p);
          const core::MultiOptimum multi = core::optimal_multi_pattern(sys, p);
          const sim::ReplicationResult multi_sim = sim::simulate_multi_overhead(
              sys, {multi.period, p, multi.segments}, ctx.replication(),
              pool.get());

          const double gain =
              (base_sim.overhead.mean - multi_sim.overhead.mean) /
              base_sim.overhead.mean;
          table.add_row({platform.name, std::to_string(plan.segments),
                         std::to_string(multi.segments),
                         util::format_sig(base.period, 4),
                         util::format_sig(multi.period, 4),
                         bench::mean_ci_cell(base_sim.overhead, 4),
                         bench::mean_ci_cell(multi_sim.overhead, 4),
                         util::format_sig(100.0 * gain, 3) + "%"});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf(
            "\nWith n = 1 the multi-pattern reduces to Theorem 1 exactly; "
            "n* grows with the silent fraction s and with the checkpoint-"
            "to-verification cost ratio C/V. Gains are modest at alpha = "
            "0.1 (resilience is ~10%% of the overhead) but the optimal n* "
            "shows when intermediate verifications pay.\n");
      });
}
