// Reproduces Table II (platform parameters) and Table III (resilience
// scenarios), plus the per-scenario coefficients our models derive from
// them — the inputs every other experiment consumes.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/units.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Table II / Table III — platform parameters and scenarios",
      "prints the paper's platform presets and derived cost coefficients",
      {}, [](const cli::ArgParser&, const cli::ExperimentContext&) {
        // ---- Table II ------------------------------------------------
        std::printf("Table II: platform parameters (from the SCR study)\n");
        io::Table t2({"Platform", "lambda_ind", "f", "s", "P", "C_P (s)",
                      "V_P (s)", "node MTBF", "platform MTBF"});
        t2.set_align(0, io::Align::kLeft);
        for (const auto& p : model::all_platforms()) {
          const model::FailureModel fm = p.failure();
          t2.add_row({p.name, util::format_sig(p.lambda_ind),
                      util::format_sig(p.fail_stop_fraction),
                      util::format_sig(1.0 - p.fail_stop_fraction),
                      util::format_sig(p.measured_procs),
                      util::format_sig(p.measured_checkpoint),
                      util::format_sig(p.measured_verification),
                      util::format_sig(util::to_years(fm.mtbf_ind()), 3) +
                          "yr",
                      util::format_duration(
                          fm.platform_mtbf(p.measured_procs))});
        }
        std::printf("%s\n", t2.to_string().c_str());

        // ---- Table III -----------------------------------------------
        std::printf("Table III: resilience scenarios\n");
        io::Table t3({"Scenario", "C_P, R_P", "V_P"});
        t3.add_row({"1", "cP", "v"});
        t3.add_row({"2", "cP", "u/P"});
        t3.add_row({"3", "a", "v"});
        t3.add_row({"4", "a", "u/P"});
        t3.add_row({"5", "b/P", "v"});
        t3.add_row({"6", "b/P", "u/P"});
        std::printf("%s\n", t3.to_string().c_str());

        // ---- Derived coefficients ------------------------------------
        std::printf(
            "Derived cost models (fit to the measured C_P, V_P at the "
            "measured P):\n");
        io::Table td({"Platform", "Scenario", "C_P model", "V_P model",
                      "analysis case"});
        td.set_align(0, io::Align::kLeft);
        td.set_align(2, io::Align::kLeft);
        td.set_align(3, io::Align::kLeft);
        td.set_align(4, io::Align::kLeft);
        for (const auto& p : model::all_platforms()) {
          for (const auto s : model::all_scenarios()) {
            const auto rc = model::resolve(p, s);
            const auto info = model::classify(rc);
            const char* case_name = "";
            switch (info.first_order_case) {
              case model::FirstOrderCase::kLinearCheckpoint:
                case_name = "case 1 (Thm 2, C=cP)";
                break;
              case model::FirstOrderCase::kConstantCost:
                case_name = "case 2 (Thm 3, C+V=d)";
                break;
              case model::FirstOrderCase::kDecreasingCost:
                case_name = "case 3 (numerical only)";
                break;
            }
            td.add_row({p.name, model::scenario_name(s),
                        rc.checkpoint.describe(), rc.verification.describe(),
                        case_name});
          }
        }
        std::printf("%s", td.to_string().c_str());
      });
}
