// Reproduces Table II (platform parameters) and Table III (resilience
// scenarios), plus the per-scenario coefficients our models derive from
// them — the inputs every other experiment consumes.

#include <cstdio>

#include "bench_common.hpp"

#include "ayd/engine/engine.hpp"
#include "ayd/model/platform.hpp"
#include "ayd/model/scenario.hpp"
#include "ayd/util/strings.hpp"
#include "ayd/util/units.hpp"

int main(int argc, char** argv) {
  using namespace ayd;
  return bench::run_experiment_main(
      argc, argv, "Table II / Table III — platform parameters and scenarios",
      "prints the paper's platform presets and derived cost coefficients",
      {}, [](const cli::ArgParser&, const cli::ExperimentContext&) {
        // ---- Table II ------------------------------------------------
        std::printf("Table II: platform parameters (from the SCR study)\n");
        engine::GridSpec platforms_grid;
        platforms_grid.platforms(model::all_platforms());
        const auto platform_records = engine::run_grid(
            platforms_grid, nullptr, [](const engine::Point& pt) {
              const model::Platform& p = *pt.platform;
              const model::FailureModel fm = p.failure();
              engine::Record r;
              r.set("Platform", p.name);
              r.set("lambda_ind", p.lambda_ind);
              r.set("f", p.fail_stop_fraction);
              r.set("s", 1.0 - p.fail_stop_fraction);
              r.set("P", p.measured_procs);
              r.set("C_P (s)", p.measured_checkpoint);
              r.set("V_P (s)", p.measured_verification);
              r.set("node MTBF",
                    util::format_sig(util::to_years(fm.mtbf_ind()), 3) +
                        "yr");
              r.set("platform MTBF",
                    util::format_duration(fm.platform_mtbf(p.measured_procs)));
              return r;
            });
        engine::TableSink t2({{"Platform", "", 4, "", io::Align::kLeft},
                              {"lambda_ind"},
                              {"f"},
                              {"s"},
                              {"P"},
                              {"C_P (s)"},
                              {"V_P (s)"},
                              {"node MTBF"},
                              {"platform MTBF"}});
        engine::emit(platform_records, {&t2});
        std::printf("%s\n", t2.to_string().c_str());

        // ---- Table III -----------------------------------------------
        std::printf("Table III: resilience scenarios\n");
        io::Table t3({"Scenario", "C_P, R_P", "V_P"});
        t3.add_row({"1", "cP", "v"});
        t3.add_row({"2", "cP", "u/P"});
        t3.add_row({"3", "a", "v"});
        t3.add_row({"4", "a", "u/P"});
        t3.add_row({"5", "b/P", "v"});
        t3.add_row({"6", "b/P", "u/P"});
        std::printf("%s\n", t3.to_string().c_str());

        // ---- Derived coefficients ------------------------------------
        std::printf(
            "Derived cost models (fit to the measured C_P, V_P at the "
            "measured P):\n");
        engine::GridSpec derived_grid;
        derived_grid.platforms(model::all_platforms())
            .scenarios(model::all_scenarios());
        const auto derived_records = engine::run_grid(
            derived_grid, nullptr, [](const engine::Point& pt) {
              const auto rc = model::resolve(*pt.platform, *pt.scenario);
              const auto info = model::classify(rc);
              const char* case_name = "";
              switch (info.first_order_case) {
                case model::FirstOrderCase::kLinearCheckpoint:
                  case_name = "case 1 (Thm 2, C=cP)";
                  break;
                case model::FirstOrderCase::kConstantCost:
                  case_name = "case 2 (Thm 3, C+V=d)";
                  break;
                case model::FirstOrderCase::kDecreasingCost:
                  case_name = "case 3 (numerical only)";
                  break;
              }
              engine::Record r;
              r.set("Platform", pt.platform->name);
              r.set("Scenario", model::scenario_name(*pt.scenario));
              r.set("C_P model", rc.checkpoint.describe());
              r.set("V_P model", rc.verification.describe());
              r.set("analysis case", case_name);
              return r;
            });
        engine::TableSink td({{"Platform", "", 4, "", io::Align::kLeft},
                              {"Scenario"},
                              {"C_P model", "", 4, "", io::Align::kLeft},
                              {"V_P model", "", 4, "", io::Align::kLeft},
                              {"analysis case", "", 4, "", io::Align::kLeft}});
        engine::emit(derived_records, {&td});
        std::printf("%s", td.to_string().c_str());
      });
}
