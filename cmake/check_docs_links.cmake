# Fails when a relative markdown link in README.md or docs/*.md points at
# a file that does not exist. External (http/https/mailto) links and
# in-page #anchors are out of scope — this is the cheap grep-style tier
# that keeps intra-repo cross-references from rotting, not a web checker.
# The glob below is evaluated on every run, so newly added docs/*.md
# files (e.g. docs/service.md) are scanned without touching this script.
#
# Usage:
#   cmake -DREPO_DIR=<repo root> -P cmake/check_docs_links.cmake
# (REPO_DIR defaults to the parent of this script's directory.)

if(NOT DEFINED REPO_DIR)
  get_filename_component(REPO_DIR "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
endif()

file(GLOB doc_files "${REPO_DIR}/README.md" "${REPO_DIR}/docs/*.md")
set(broken "")
set(checked 0)

foreach(doc IN LISTS doc_files)
  file(READ "${doc}" content)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  file(RELATIVE_PATH doc_rel "${REPO_DIR}" "${doc}")
  # Walk "](target)" occurrences one MATCH at a time (REGEX MATCHALL's
  # result-list semantics corrupt on content containing semicolons, e.g.
  # C++ snippets). Targets with whitespace are lambda captures / prose in
  # code blocks, not links; the pattern excludes them.
  set(rest "${content}")
  while(rest MATCHES "\\]\\(([^()\r\n\t ]+)\\)")
    set(target "${CMAKE_MATCH_1}")
    # Consume through this match so the loop advances.
    string(FIND "${rest}" "](${target})" pos)
    string(LENGTH "](${target})" match_len)
    math(EXPR next "${pos} + ${match_len}")
    string(SUBSTRING "${rest}" ${next} -1 rest)

    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    # Drop a "#section" suffix; the file part is what must exist.
    string(REGEX REPLACE "#[^#]*$" "" target_path "${target}")
    if(target_path STREQUAL "")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS "${doc_dir}/${target_path}")
      string(APPEND broken "\n  ${doc_rel}: (${target})")
    endif()
  endwhile()
endforeach()

if(NOT broken STREQUAL "")
  message(FATAL_ERROR "broken intra-docs links:${broken}")
endif()
message(STATUS "docs links OK: ${checked} relative links resolve")
