# docs_examples CTest body: runs the quickstart example and greps its
# output for the lines the documentation quotes (README "Run the
# 60-second tour", docs/architecture.md testing tiers). If quickstart's
# output shape drifts, this fails — docs cannot rot silently.
#
# Usage: cmake -DQUICKSTART_EXE=<path> -P run_quickstart_check.cmake

if(NOT DEFINED QUICKSTART_EXE)
  message(FATAL_ERROR "pass -DQUICKSTART_EXE=<path to quickstart binary>")
endif()

execute_process(
  COMMAND "${QUICKSTART_EXE}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
  TIMEOUT 300)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with ${rc}\nstderr:\n${err}")
endif()

# The load-bearing lines of the walk-through. Kept loose on numbers
# (which depend on replica scale) and tight on structure.
set(expected_patterns
    "amdahl-young-daly v.* — quickstart"
    "reproduces: A\\. Cavelan, J\\. Li, Y\\. Robert, H\\. Sun"
    "platform Hera: lambda_ind = .*node MTBF"
    "\\[1\\] Theorem 1 @ P = 512: checkpoint every"
    "\\[2\\] Theorem 2: enroll P\\* = [0-9]+ processors"
    "\\[3\\] numerical optimum:   P\\* = [0-9]+"
    "simulated overhead:  .*95% CI.*analytic"
    "error telemetry: .*fail-stops and .*detected silent errors"
    "Takeaway: with failures in the picture")

foreach(pattern IN LISTS expected_patterns)
  if(NOT out MATCHES "${pattern}")
    message(FATAL_ERROR
            "quickstart output is missing expected line /${pattern}/.\n"
            "Update examples/quickstart.cpp and the docs together.\n"
            "Full output:\n${out}")
  endif()
endforeach()

message(STATUS "quickstart output matches the documented walk-through")
